"""Multi-accelerator fleet simulation driven by a discrete-event clock.

The fleet is ``num_chips`` independent :class:`~repro.core.simulator.HyGCNSimulator`
instances, each with a FIFO dispatch queue.  The event loop advances a
simulated clock over three event kinds:

* ``arrival``    -- a request enters: either answered by the result cache,
  late-joined into a formed-but-unstarted batch (``continuous`` formation,
  :mod:`repro.serving.batching`) or handed to the batcher (which may emit
  a batch immediately on its size cap);
* ``flush``      -- a batching-policy deadline fired (timeout / SLO budget);
  formation policies may emit an overlap group and keep the rest pending,
  so the loop re-arms the flush timer after every emission;
* ``completion`` -- a chip finished a batch: its requests complete, the
  result cache is populated, and the next queued batch starts.

A batch's *service time* is the simulated execution time reported by
:class:`~repro.core.stats.SimulationReport` for the **deduped fused
subgraph** of the batch (shared neighbourhood vertices are streamed and
aggregated once -- see
:meth:`~repro.serving.sampler.SubgraphSampler.fuse`), discounted by
per-chip feature reuse: each chip keeps an LRU of the vertex features it
recently streamed, modelling the DRAM traffic a warm chip avoids when
consecutive batches overlap (which is what the locality-aware dispatch
policy tries to maximise, and what the overlap-aware formation policies
in :mod:`repro.serving.batching` maximise *within* a batch).

Dispatch policies:

* ``round-robin``  -- cycle through the chips (oblivious, perfectly fair);
* ``least-loaded`` -- pick the chip with the fewest outstanding requests;
* ``locality``     -- route by the batch's majority vertex partition, trading
  load balance for feature-cache reuse;
* ``shape-aware``  -- heterogeneous fleets (:mod:`repro.serving.hetero`):
  rank schedulable chips by predicted finish time, where each chip's
  predicted service is its shape's learned seconds-per-fused-vertex for
  the batch's profile bucket; falls back to least-loaded while any
  candidate shape is still cold for that bucket.

This module also hosts :class:`WFQScheduler`, the weighted-fair-queueing
stage that multi-tenant serving (:mod:`repro.serving.tenancy`) inserts
between per-tenant batch formation and the chips: deficit round-robin over
per-tenant backlog queues, with each batch's cost being its estimated fused
service time, so chip-time (not batch count) is what gets shared in
proportion to tenant weights.

With a :class:`~repro.serving.control.ControlConfig` armed the fleet becomes
*elastic*: chips move through a warming -> active -> draining -> retired
lifecycle under the control plane's autoscaling decisions, arrivals pass an
admission/degradation gate before batching, and the report carries the
scaling timeline plus chip-seconds accounting.
"""

from __future__ import annotations

import heapq
import logging
from collections import deque

import numpy as np
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import HyGCNConfig
from ..core.simulator import HyGCNSimulator
from ..graphs.datasets import load_dataset
from ..graphs.delta import DeltaGraph
from ..graphs.graph import Graph
from ..models.model_zoo import build_model
from .batcher import Batch
from .batching import (
    ALL_BATCH_POLICIES,
    BATCH_POLICIES,
    build_batch_policy,
    make_signature_fn,
    resolve_signature_hops,
)
from .cache import LRUCache
from .control import ControlConfig, ControlObservation, ControlPlane, TenantBinding
from .hetero import (
    DEFAULT_SHAPE,
    BatchProfile,
    FleetSpec,
    ShapeChooser,
    ShapeScorer,
    account_batch_service,
    make_profile_fn,
)
from .sampler import SubgraphSampler
from .sharding import ShardExecutor, ShardingConfig, shard_plan_for
from .stats import (
    BatchingStats,
    ChipStats,
    ConsistencyStats,
    HeteroStats,
    RequestRecord,
    ServingReport,
)
from .streaming import StreamState, UpdateStream, generate_update_stream, \
    parse_update_mix
from .workload import Request, RequestGenerator, WorkloadConfig, trace_arrival_times

__all__ = [
    "DISPATCH_POLICIES",
    "FleetConfig",
    "Chip",
    "ServingSimulator",
    "WFQScheduler",
    "run_serving",
    "clear_probe_cache",
    "probe_targets",
]

#: Dispatch-policy names accepted by the CLI and :class:`FleetConfig`.
DISPATCH_POLICIES = ("round-robin", "least-loaded", "locality", "shape-aware")

_ARRIVAL, _FLUSH, _COMPLETION, _CONTROL, _CHIP_READY, _METRICS, _UPDATE = \
    0, 1, 2, 3, 4, 5, 6

logger = logging.getLogger("repro.serving.fleet")

#: EWMA weight for the per-request cost estimate the control plane consumes.
_COST_EWMA_ALPHA = 0.3

#: Adaptive defaults, as multiples of the probe-batch service time: a batch
#: may wait about two service times before a timeout flush, and the latency
#: SLO is ten service times (queueing + batching headroom over raw service).
_TIMEOUT_SERVICE_MULTIPLE = 2.0
_SLO_SERVICE_MULTIPLE = 10.0


@dataclass(frozen=True)
class FleetConfig:
    """Structural and policy parameters of the serving deployment.

    ``batch_timeout_s`` and ``slo_s`` default to ``None``, meaning the
    simulator derives them from a probe batch's service time so the policies
    stay meaningful across datasets whose per-batch cost varies by orders of
    magnitude; pass explicit values to pin them.

    ``batch_policy`` accepts the flush-trigger trio (``size`` / ``timeout``
    / ``slo``) and the formation trio (``fifo`` / ``overlap`` /
    ``continuous``, see :mod:`repro.serving.batching`).  The overlap knobs
    only matter for the formation policies: ``overlap_k`` is the hop depth
    of the neighbourhood signatures (``None`` = 1, capped to ``num_hops``),
    ``min_overlap`` the similarity floor for growing a group (0 disables),
    ``pool_factor`` sizes the formation pool (``pool_factor *
    max_batch_size`` pending requests before a forced flush), and
    ``join_window_s`` / ``staleness_s`` are the continuous-batching
    budgets (``None`` = adaptive: the batch timeout, and half the SLO).

    ``fleet_spec`` makes the fleet *heterogeneous*
    (:mod:`repro.serving.hetero`): each chip takes the shape the spec's
    roster assigns it, and ``num_chips`` is derived from the spec (the
    configured value is overridden).  Without a spec every chip runs
    ``hw``.  The ``shape-aware`` dispatch policy works on either -- on a
    homogeneous fleet it degenerates to backlog comparison.

    ``sharding`` turns the fleet into a *chip group* executing every batch
    across all chips (:mod:`repro.serving.sharding`): the dataset is
    partitioned one shard per chip, so ``num_chips`` must equal
    ``sharding.num_shards``; chip 0 is the group leader (the only
    schedulable chip) and the rest serve sub-batches off its clock.
    Incompatible with the elastic control plane (a group cannot grow or
    shrink mid-run).
    """

    num_chips: int = 4
    dispatch: str = "round-robin"
    batch_policy: str = "size"
    max_batch_size: int = 32
    batch_timeout_s: Optional[float] = None
    slo_s: Optional[float] = None
    cache_size: int = 4096
    num_hops: int = 2
    fanout: int = 8
    feature_cache_size: int = 8192
    reuse_discount: float = 0.35
    cache_hit_latency_s: float = 1e-6
    overlap_k: Optional[int] = None
    min_overlap: float = 0.0
    pool_factor: int = 4
    join_window_s: Optional[float] = None
    staleness_s: Optional[float] = None
    seed: int = 0
    hw: HyGCNConfig = field(default_factory=HyGCNConfig)
    fleet_spec: Optional[FleetSpec] = None
    sharding: Optional[ShardingConfig] = None

    def __post_init__(self) -> None:
        if self.fleet_spec is not None:
            # the spec's roster *is* the fleet: its size wins
            object.__setattr__(self, "num_chips", self.fleet_spec.num_chips)
        if self.num_chips < 1:
            raise ValueError("num_chips must be >= 1")
        if self.dispatch not in DISPATCH_POLICIES:
            raise ValueError(f"dispatch must be one of {DISPATCH_POLICIES}, "
                             f"got {self.dispatch!r}")
        if self.batch_policy not in ALL_BATCH_POLICIES:
            raise ValueError(f"batch_policy must be one of {ALL_BATCH_POLICIES}, "
                             f"got {self.batch_policy!r}")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.num_hops < 0:
            raise ValueError("num_hops must be >= 0")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if not 0 <= self.reuse_discount < 1:
            raise ValueError("reuse_discount must be in [0, 1)")
        if self.cache_size < 0 or self.feature_cache_size < 0:
            raise ValueError("cache sizes must be >= 0")
        if self.batch_timeout_s is not None and self.batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive when set")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive when set")
        if self.overlap_k is not None and self.overlap_k < 0:
            raise ValueError("overlap_k must be >= 0 when set")
        if not 0.0 <= self.min_overlap <= 1.0:
            raise ValueError("min_overlap must be in [0, 1]")
        if self.pool_factor < 1:
            raise ValueError("pool_factor must be >= 1")
        if self.join_window_s is not None and self.join_window_s <= 0:
            raise ValueError("join_window_s must be positive when set")
        if self.staleness_s is not None and self.staleness_s <= 0:
            raise ValueError("staleness_s must be positive when set")
        if self.sharding is not None \
                and self.sharding.num_shards != self.num_chips:
            raise ValueError(
                f"sharded execution needs one chip per shard: "
                f"num_chips={self.num_chips} but "
                f"sharding.num_shards={self.sharding.num_shards}")

    @property
    def signature_hops(self) -> int:
        """Resolved signature depth (see
        :func:`repro.serving.batching.resolve_signature_hops`)."""
        return resolve_signature_hops(self.overlap_k, self.num_hops)

    # ------------------------------------------------------------------ #
    # Chip shapes (heterogeneous fleets, repro.serving.hetero)
    # ------------------------------------------------------------------ #
    @property
    def base_shape(self) -> str:
        """Shape label of homogeneous chips: ``balanced`` when ``hw`` is the
        Table 6 default, ``custom`` for a hand-built config."""
        return DEFAULT_SHAPE if self.hw == HyGCNConfig() else "custom"

    def chip_roster(self) -> List[Tuple[str, HyGCNConfig]]:
        """One ``(shape name, hw config)`` per chip, in chip-id order."""
        if self.fleet_spec is not None:
            return self.fleet_spec.roster()
        return [(self.base_shape, self.hw)] * self.num_chips

    def distinct_shapes(self) -> Dict[str, HyGCNConfig]:
        """Shape name -> hw config, in roster order (deterministic)."""
        if self.fleet_spec is not None:
            return self.fleet_spec.distinct_shapes()
        return {self.base_shape: self.hw}

    @property
    def heterogeneous(self) -> bool:
        """True when the roster mixes more than one chip shape."""
        return len(self.distinct_shapes()) > 1


class Chip:
    """One simulated HyGCN instance: FIFO queue, busy state, feature cache.

    Elastic runs drive a chip through a lifecycle: ``warming`` (commissioned,
    consuming chip-seconds, serving nothing) -> ``active`` (schedulable) ->
    ``draining`` (finishes outstanding work, accepts no new batches) ->
    ``retired``.  Fixed-fleet chips stay ``active`` for the whole run.
    """

    def __init__(self, chip_id: int, hw: HyGCNConfig, feature_cache_size: int,
                 shape: str = DEFAULT_SHAPE):
        self.chip_id = chip_id
        self.hw = hw
        self.shape = shape
        self.simulator = HyGCNSimulator(hw)
        self.queue: Deque[Tuple[Batch, float]] = deque()
        self.current: Optional[Batch] = None
        self.feature_cache = LRUCache(feature_cache_size)
        self.stats = ChipStats(chip_id=chip_id, shape=shape)
        self.state = "active"
        self.added_s = 0.0
        self.ready_s = 0.0
        self.retired_s: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.current is not None

    @property
    def schedulable(self) -> bool:
        """True while the chip accepts new batches."""
        return self.state == "active"

    @property
    def outstanding_requests(self) -> int:
        queued = sum(batch.size for batch, _ in self.queue)
        return queued + (self.current.size if self.current else 0)


class _RoundRobinDispatch:
    """Cycle through the schedulable chips in call order.

    Oblivious and perfectly fair in *batch count* (not chip time).  The
    rotation counter advances over whatever chip list the event loop passes
    (draining/retired chips are already filtered out), so on an elastic
    fleet the cycle simply re-wraps over the surviving roster.
    Deterministic: the counter is the only state.
    """

    def __init__(self) -> None:
        self._next = 0

    def select(self, chips: Sequence[Chip], batch: Batch) -> Chip:
        chip = chips[self._next % len(chips)]
        self._next += 1
        return chip


class _LeastLoadedDispatch:
    """Pick the schedulable chip with the fewest outstanding *requests*.

    Outstanding = queued + in service, counted in requests (not batches,
    not estimated seconds), so a chip holding one giant batch looks as
    loaded as one holding many small ones.  Ties break on the lowest chip
    id, which is what makes the policy bit-for-bit deterministic and what
    the shape-aware policy's cold-bucket fallback inherits.
    """

    def select(self, chips: Sequence[Chip], batch: Batch) -> Chip:
        return min(chips, key=lambda c: (c.outstanding_requests, c.chip_id))


class _LocalityDispatch:
    """Route each batch to the home chip of its majority vertex partition.

    Vertices are striped into ``num_chips`` contiguous partitions of the
    base graph's id space; each batch votes with its requests' target
    vertices and goes to the partition winner's chip (ties break on the
    lower partition id).  Trades load balance for per-chip feature-cache
    reuse.  On an elastic fleet the partition map is frozen at the initial
    fleet size and out-of-range homes clamp to the last chip.
    """

    def __init__(self, num_vertices: int, num_chips: int):
        self._partition_size = max(1, -(-num_vertices // num_chips))

    def select(self, chips: Sequence[Chip], batch: Batch) -> Chip:
        votes: Dict[int, int] = {}
        for request in batch.requests:
            home = min(request.target_vertex // self._partition_size, len(chips) - 1)
            votes[home] = votes.get(home, 0) + 1
        winner = max(votes.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        return chips[winner]


class _ShapeAwareDispatch:
    """Route each batch to the chip shape that serves its profile fastest.

    Every candidate chip is scored with a predicted finish time::

        backlog(chip) + rate(chip.shape, bucket) * est_fused_vertices

    where ``bucket`` is the batch's :class:`~repro.serving.hetero.\
    BatchProfile` bucket, ``rate`` the scorer's learned seconds per fused
    vertex and ``backlog`` the same prediction summed over the chip's
    queued and in-service batches (their stamped profiles).  The minimum
    wins; ties break on outstanding requests then chip id, so a
    homogeneous fleet (all rates equal) degenerates to exactly
    least-loaded.

    While *any* candidate shape is still cold for the bucket (no probe
    seed, no observation) the whole decision falls back to least-loaded --
    scoring a partial roster would systematically favour the warmed-up
    shapes regardless of fit.  ``scored`` / ``fallback`` count both paths
    for the report's :class:`~repro.serving.stats.HeteroStats`.
    Deterministic: profiles and rates are seeded-sampler / event-order
    state, and every tie-break is total.
    """

    def __init__(self, scorer: ShapeScorer, profile_fn):
        self.scorer = scorer
        self._profile_fn = profile_fn
        self._fallback = _LeastLoadedDispatch()
        self.scored = 0
        self.fallback = 0

    def _est_s(self, chip: Chip, batch: Batch) -> float:
        """Predicted service seconds of ``batch`` on ``chip``.

        A queued batch can lose its stamp mid-queue (a continuous late
        join invalidates it); re-profile the current membership rather
        than undercounting the backlog of exactly the chips holding the
        freshest, largest batches.
        """
        profile = batch.profile
        if profile is None:
            profile = batch.profile = self._profile_fn(batch)
        return self.scorer.rate_or_default(chip.shape, profile.bucket) \
            * profile.est_fused_vertices

    def select(self, chips: Sequence[Chip], batch: Batch) -> Chip:
        if batch.profile is None:
            batch.profile = self._profile_fn(batch)
        bucket = batch.profile.bucket
        self.scorer.note_demand(bucket)
        shapes = sorted({c.shape for c in chips})
        if not self.scorer.warm(shapes, bucket):
            self.fallback += 1
            return self._fallback.select(chips, batch)
        self.scored += 1

        def predicted_finish_s(chip: Chip) -> float:
            backlog = sum(self._est_s(chip, queued) for queued, _ in chip.queue)
            if chip.current is not None:
                backlog += self._est_s(chip, chip.current)
            return backlog + self.scorer.rate(chip.shape, bucket) \
                * batch.profile.est_fused_vertices

        return min(chips, key=lambda c: (predicted_finish_s(c),
                                         c.outstanding_requests, c.chip_id))


def _build_dispatch(policy: str, num_vertices: int, num_chips: int,
                    scorer: Optional[ShapeScorer] = None,
                    profile_fn=None):
    if policy == "round-robin":
        return _RoundRobinDispatch()
    if policy == "least-loaded":
        return _LeastLoadedDispatch()
    if policy == "locality":
        return _LocalityDispatch(num_vertices, num_chips)
    if policy == "shape-aware":
        if scorer is None or profile_fn is None:
            raise ValueError("shape-aware dispatch needs a ShapeScorer and "
                             "a profile function")
        return _ShapeAwareDispatch(scorer, profile_fn)
    raise ValueError(f"unknown dispatch policy {policy!r}; "
                     f"choose from {DISPATCH_POLICIES}")


# --------------------------------------------------------------------------- #
# Shared service-time model (single- and multi-tenant paths)
# --------------------------------------------------------------------------- #
def fused_batch_service_time_s(chip: Chip, sampler, model, batch: Batch,
                               dataset_name: str, reuse_discount: float,
                               cache_key=None, account: bool = True,
                               stream=None, now: float = 0.0) -> float:
    """Simulated execution time of the fused subgraph batch on ``chip``.

    Requests for the same target (and sampling shape) within a batch share
    one subgraph, and distinct samples fuse into the **deduped union**
    (:meth:`~repro.serving.sampler.SubgraphSampler.fuse`): a vertex sampled
    by several members is streamed and aggregated once, which is the work
    reduction the overlap-aware formation policies exist to maximise.  The
    batch is stamped with ``fused_vertices`` / ``naive_vertices`` /
    ``overlap_ratio`` so the cost models and :class:`BatchingStats` see the
    measured dedup, not an estimate.

    The chip's feature-cache hit fraction further discounts the simulated
    time by up to ``reuse_discount`` (warm features skip their DRAM
    stream).  ``cache_key`` maps a global vertex id to the feature-cache
    key -- multi-tenant serving passes ``lambda v: (tenant, v)`` so
    numerically-aliasing vertex ids from different tenants' graphs never
    share cache entries.

    Degraded requests (control-plane ladder) carry per-request hop/fanout
    overrides; subgraph *sharing* requires both the target and the sampling
    shape to match, so a degraded and a full-fidelity request for the same
    vertex contribute two distinct samples -- whose union still dedups the
    neighbourhood they have in common.
    """
    request_shapes = [(r.target_vertex, r.degrade_hops, r.degrade_fanout)
                      for r in batch.requests]
    shapes = list(dict.fromkeys(request_shapes))
    by_shape = {s: sampler.extract(s[0], num_hops=s[1], fanout=s[2])
                for s in shapes}
    samples = [by_shape[s] for s in shapes]
    naive_vertices = sum(by_shape[s].num_vertices for s in request_shapes)
    if len(samples) == 1:
        fused = samples[0].graph
    else:
        prefix = f"{batch.tenant}-" if batch.tenant else ""
        fused = sampler.fuse(samples, name=f"{prefix}batch{batch.batch_id}")
    batch.fused_vertices = fused.num_vertices
    batch.naive_vertices = naive_vertices
    batch.overlap_ratio = 1.0 - fused.num_vertices / naive_vertices \
        if naive_vertices else 0.0
    report = chip.simulator.run_model(model, fused, dataset_name=dataset_name)
    # stamp the cycle-model phase breakdown for the observability layer
    # (cheap property sums over the layer reports; the batch's trace span
    # carries it -- see repro.serving.observe)
    batch.phase_cycles = {
        "total": report.total_cycles,
        "aggregation": report.aggregation_cycles,
        "combination": report.combination_cycles,
        "dram_busy": report.dram_stats.busy_cycles,
    }
    vertices: Set[int] = set()
    for sample in samples:
        vertices.update(sample.vertices)
    key = cache_key if cache_key is not None else (lambda v: v)
    if stream is None:
        hits = sum(1 for v in vertices
                   if chip.feature_cache.get(key(v)) is not None)
        for v in vertices:
            chip.feature_cache.put(key(v), True)
    else:
        # streaming run: lines carry the feature version they were filled
        # at, so a hit can be consistency-checked against the vertex's
        # current feature version (stale only under --invalidation none)
        hits = 0
        for v in vertices:
            stamp = chip.feature_cache.get(key(v))
            if stamp is not None:
                hits += 1
                stream.on_feature_hit(int(v), stamp, now)
        for v in vertices:
            chip.feature_cache.put(key(v),
                                   stream.graph.feature_version(int(v)))
    reuse_fraction = hits / len(vertices) if vertices else 0.0
    service_s = report.execution_time_s * (1.0 - reuse_discount * reuse_fraction)
    if account:
        chip.stats.vertices_simulated += fused.num_vertices
        chip.stats.feature_lookups += len(vertices)
        chip.stats.feature_hits += hits
    return service_s


#: Probe-service memo, keyed on everything that determines the probe result:
#: hardware config, model, dataset, batch shape, sampling shape and seed.
#: Multi-tenant startup probes once per tenant and every scale-up event would
#: otherwise re-run the probe for its adaptive warm-up; the memo makes those
#: lookups free.  ``clear_probe_cache`` is the test hook.
_PROBE_CACHE: Dict[Tuple, float] = {}


def clear_probe_cache() -> None:
    """Drop all memoised probe-batch service times (test isolation hook)."""
    _PROBE_CACHE.clear()


def probe_targets(num_vertices: int, max_batch_size: int,
                  seed: int) -> np.ndarray:
    """The distinct uniformly-drawn target vertices of the probe batch.

    Shared by :func:`probe_batch_service_time_s` and the tenancy layer's
    fused-size cost seeding so both always describe the *same* probe batch.
    """
    num = min(max_batch_size, num_vertices)
    rng = np.random.default_rng(seed)
    return rng.choice(num_vertices, size=num, replace=False)


def probe_batch_service_time_s(hw: HyGCNConfig, sampler, model,
                               dataset_name: str, max_batch_size: int,
                               num_vertices: int, seed: int) -> float:
    """Service time of one full batch of distinct uniformly-drawn targets.

    The probe calibrates arrival rates and resolves the adaptive timeout /
    SLO defaults; it runs on a throwaway cold chip so it never perturbs the
    fleet's caches or accounting.  Results are memoised on
    (hw, model, dataset, batch shape, sampling shape, seed) -- the probe is
    deterministic in exactly those inputs -- so repeated startups and
    scale-up events pay for it once per configuration.
    """
    num = min(max_batch_size, num_vertices)
    # the graph version belongs in the key: a mutating graph changes the
    # probe batch's neighbourhoods under a stable (dataset, shape) tuple,
    # which silently served stale probe times before streaming landed
    key = (repr(hw), getattr(model, "name", model.__class__.__name__),
           dataset_name, num, num_vertices,
           sampler.num_hops, sampler.fanout, seed,
           getattr(sampler.graph, "version", None))
    cached = _PROBE_CACHE.get(key)
    if cached is not None:
        return cached
    targets = probe_targets(num_vertices, max_batch_size, seed)
    probe = Batch(batch_id=-1, requests=[
        Request(request_id=-1 - i, target_vertex=int(t), arrival_time_s=0.0)
        for i, t in enumerate(targets)], created_time_s=0.0)
    probe_chip = Chip(-1, hw, feature_cache_size=0)
    # on a mutable graph the probe must not leave sampler-memo residue:
    # whether this call executes or hits _PROBE_CACHE would otherwise leak
    # into the run's invalidation accounting (run-to-run nondeterminism)
    mutable = getattr(sampler, "_mutable", False)
    memo_before = set(sampler._memo.keys()) | set(sampler._sig_memo.keys()) \
        if mutable else None
    service_s = fused_batch_service_time_s(probe_chip, sampler, model, probe,
                                           dataset_name=dataset_name,
                                           reuse_discount=0.0, account=False)
    if mutable:
        added = (set(sampler._memo.keys())
                 | set(sampler._sig_memo.keys())) - memo_before
        sampler.forget(added)
    _PROBE_CACHE[key] = service_s
    return service_s


class FleetScaler:
    """Executes the control plane's sizing decisions on a chip roster.

    Shared by the single- and multi-tenant event loops so warm-up,
    drain-before-remove and timeline accounting cannot drift between them.
    The loops stay in charge of their own event heaps (``schedule_ready``
    pushes the loop's ``_CHIP_READY`` event) and of which active chip a
    scale-in should drain (``drain_victim`` -- single-tenant chips hold
    private queues, multi-tenant chips pull from the shared WFQ stage).

    On a heterogeneous fleet a :class:`~repro.serving.hetero.ShapeChooser`
    decides *which shape* each scale-up commissions (the loops' drain
    victims already consult it on the way down); homogeneous fleets pass
    ``None`` and every new chip takes the fleet's base shape.
    """

    def __init__(self, chips: List[Chip], control: ControlPlane,
                 new_chip, schedule_ready, drain_victim,
                 shape_chooser: Optional[ShapeChooser] = None):
        self.chips = chips
        self.control = control
        self._new_chip = new_chip            # (shape | None) -> Chip (unrostered)
        self._schedule_ready = schedule_ready  # (chip) -> None
        self._drain_victim = drain_victim    # (active chips) -> Chip
        self._shape_chooser = shape_chooser

    def counts(self) -> Tuple[int, int, int]:
        """(active, warming, draining) sizes of the current roster."""
        active = warming = draining = 0
        for chip in self.chips:
            if chip.state == "active":
                active += 1
            elif chip.state == "warming":
                warming += 1
            elif chip.state == "draining":
                draining += 1
        return active, warming, draining

    def _record(self, now: float, action: str, chip: Chip) -> None:
        active, warming, draining = self.counts()
        self.control.record_event(now, action, chip.chip_id,
                                  active, warming, draining)

    def retire(self, chip: Chip, now: float) -> None:
        chip.state = "retired"
        chip.retired_s = now
        self._record(now, "retire", chip)

    def mark_ready(self, chip: Chip, now: float) -> bool:
        """Flip a warming chip to active (False if it was retired meanwhile)."""
        if chip.state != "warming":
            return False
        chip.state = "active"
        self._record(now, "ready", chip)
        return True

    def scale_to(self, target: int, now: float) -> None:
        """Add warming chips / drain victims until committed capacity
        (active + warming) meets ``target``."""
        committed = sum(1 for c in self.chips
                        if c.state in ("active", "warming"))
        while committed < target:
            shape = self._shape_chooser.shape_to_add() \
                if self._shape_chooser is not None else None
            chip = self._new_chip(shape)
            chip.added_s = now
            chip.ready_s = now + self.control.warmup_s
            if self.control.warmup_s > 0:
                chip.state = "warming"
                self._schedule_ready(chip)
            else:
                chip.state = "active"
            self.chips.append(chip)
            self._record(now, "add", chip)
            committed += 1
        while committed > target:
            warming_chips = [c for c in self.chips if c.state == "warming"]
            if warming_chips:
                # cancelling a warm-up is free: the chip never served
                self.retire(max(warming_chips, key=lambda c: c.chip_id), now)
            else:
                actives = [c for c in self.chips if c.state == "active"]
                if len(actives) <= 1:
                    break  # never drain the last serving chip
                victim = self._drain_victim(actives)
                victim.state = "draining"
                self._record(now, "drain", victim)
                if not victim.busy and not victim.queue:
                    self.retire(victim, now)
            committed -= 1


class WFQScheduler:
    """Weighted fair queueing over per-tenant batch queues (deficit round-robin).

    Each tenant owns a FIFO of ``(batch, cost_s)`` entries, where ``cost_s``
    is the caller's estimate of the batch's fused service time.  The scheduler
    visits tenants in a fixed rotation; on arriving at a tenant it credits the
    tenant's *deficit counter* with ``quantum_s * weight`` once, then releases
    head batches while their cost fits the deficit.  A tenant whose queue
    drains forfeits its remaining deficit (the textbook DRR rule that stops an
    idle tenant hoarding credit), so over any contended interval each tenant's
    released service time converges to its weight share regardless of how its
    batch sizes compare to the other tenants'.

    The scheduler is release-order only: it does not know about chips.  The
    multi-tenant event loop calls :meth:`next_batch` once per free chip and
    stops pulling when the fleet is saturated, which keeps the DRR state
    consistent no matter how many chips drain it.
    """

    def __init__(self, weights: Dict[str, float], quantum_s: float):
        if not weights:
            raise ValueError("WFQScheduler needs at least one tenant")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("tenant weights must be positive")
        if quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        self._order = list(weights)
        self._weights = dict(weights)
        self._quantum_s = float(quantum_s)
        self._queues: Dict[str, Deque[Tuple[Batch, float]]] = {
            name: deque() for name in self._order}
        self._deficit_s: Dict[str, float] = {name: 0.0 for name in self._order}
        self._cursor = 0
        self._credited = False  # has the tenant under the cursor been credited

    # ------------------------------------------------------------------ #
    @property
    def pending_batches(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def backlog(self, tenant: str) -> int:
        """Number of formed-but-undispatched batches queued for ``tenant``."""
        return len(self._queues[tenant])

    def enqueue(self, tenant: str, batch: Batch, cost_s: float) -> None:
        """Admit a formed batch into ``tenant``'s dispatch queue."""
        if tenant not in self._queues:
            raise KeyError(f"unknown tenant {tenant!r}")
        self._queues[tenant].append((batch, max(float(cost_s), 1e-12)))

    def reprice(self, tenant: str, batch_id: int, cost_s: float) -> bool:
        """Update the stored cost of a still-queued batch (late joins).

        Continuous batching grows a batch *after* it was enqueued; without
        repricing, the DRR deficit would bill the tenant the pre-join
        estimate while the chips do post-join work.  Returns ``False`` when
        the batch already left the queue (its cost was already charged).
        """
        if tenant not in self._queues:
            raise KeyError(f"unknown tenant {tenant!r}")
        queue = self._queues[tenant]
        for i, (batch, _) in enumerate(queue):
            if batch.batch_id == batch_id:
                queue[i] = (batch, max(float(cost_s), 1e-12))
                return True
        return False

    def next_batch(self) -> Optional[Tuple[str, Batch, float]]:
        """Release the next ``(tenant, batch, cost_s)`` in DRR order.

        Returns ``None`` when every queue is empty.  Each call releases at
        most one batch; the cursor only advances off a tenant once its head
        batch no longer fits the deficit (or its queue drains), so a burst of
        calls services tenants in contiguous weight-proportional runs.
        """
        if self.pending_batches == 0:
            return None
        # Each full rotation credits every non-empty queue, so the loop is
        # bounded by max_cost / (quantum * min_weight) rotations.
        while True:
            name = self._order[self._cursor]
            queue = self._queues[name]
            if not queue:
                self._deficit_s[name] = 0.0
                self._advance()
                continue
            if not self._credited:
                self._deficit_s[name] += self._quantum_s * self._weights[name]
                self._credited = True
            batch, cost_s = queue[0]
            if cost_s <= self._deficit_s[name]:
                queue.popleft()
                self._deficit_s[name] -= cost_s
                if not queue:
                    self._deficit_s[name] = 0.0
                    self._advance()
                return name, batch, cost_s
            self._advance()

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)
        self._credited = False


class ServingSimulator:
    """Discrete-event simulation of online inference over a chip fleet.

    Passing a :class:`~repro.serving.control.ControlConfig` with any lever
    armed makes the run *elastic*: the event loop consults a fresh
    :class:`~repro.serving.control.ControlPlane` on every cache-missing
    arrival (admission / degradation) and at every control interval
    (autoscaling between ``min_chips`` and ``max_chips``, with warm-up and
    drain-before-remove semantics).  The initial fleet size is
    ``num_chips`` clamped into the autoscaler's band.
    """

    def __init__(self, graph: Graph, model, config: Optional[FleetConfig] = None,
                 dataset_name: Optional[str] = None,
                 control: Optional[ControlConfig] = None,
                 observe=None, capture=None, updates=None):
        self.config = config or FleetConfig()
        #: Streaming-update hook (:class:`repro.serving.streaming.UpdateStream`)
        #: or ``None``; arming it wraps the graph in a mutable
        #: :class:`~repro.graphs.delta.DeltaGraph` and interleaves the
        #: stream's events with query traffic.  ``updates.events`` may
        #: still be empty at construction (the end-to-end driver fills
        #: them once the arrival rate is calibrated); they are read at
        #: :meth:`run`.
        self.updates = updates
        if updates is not None and not isinstance(graph, DeltaGraph):
            graph = DeltaGraph(graph, compact_every=updates.compact_every)
        #: Observability hub (:class:`repro.serving.observe.Instrumentation`)
        #: or ``None``; hooks are guarded so an uninstrumented run executes
        #: no observability code.
        self.observe = observe
        #: Request-trace capture hub (:class:`repro.serving.trace.TraceWriter`)
        #: or ``None``.  Records every *offered* request at its arrival
        #: event -- before the cache lookup and before the control plane's
        #: admission/degradation gate -- so a capture replays bit-for-bit.
        self.capture = capture
        self.graph = graph
        self.model = model
        self.dataset_name = dataset_name or graph.name
        cfg = self.config
        self.control_config = control if control is not None and control.active \
            else None
        self.sampler = SubgraphSampler(graph, num_hops=cfg.num_hops,
                                       fanout=cfg.fanout, seed=cfg.seed)
        initial_chips = cfg.num_chips
        if self.control_config is not None \
                and self.control_config.autoscale is not None:
            # only the autoscaler's band constrains the fleet; admission/
            # degrade-only control leaves the configured size untouched
            initial_chips = max(self.control_config.min_chips,
                                min(self.control_config.max_chips,
                                    cfg.num_chips))
        roster = cfg.chip_roster()
        # a min-chips band wider than the spec cycles the roster
        self.chips = [Chip(i, roster[i % len(roster)][1],
                           cfg.feature_cache_size,
                           shape=roster[i % len(roster)][0])
                      for i in range(initial_chips)]
        self._next_chip_id = initial_chips
        self._shapes = cfg.distinct_shapes()
        self.result_cache = LRUCache(cfg.cache_size)
        #: Sharded-execution driver (:mod:`repro.serving.sharding`), or
        #: ``None`` on an unsharded fleet.  Chip 0 is the group leader and
        #: stays ``active``; the other chips become non-schedulable
        #: ``member`` chips serving sub-batches off the leader's clock.
        self.shard_executor: Optional[ShardExecutor] = None
        if cfg.sharding is not None:
            if self.control_config is not None:
                raise ValueError(
                    "sharded execution cannot be combined with the elastic "
                    "control plane (a chip group cannot scale mid-run)")
            plan = shard_plan_for(graph, cfg.sharding)
            for chip in self.chips[1:]:
                chip.state = "member"
            self.shard_executor = ShardExecutor(
                plan, self.chips, self.sampler, self.model,
                self.dataset_name, cfg.sharding,
                feature_bytes=graph.feature_length
                * graph.features.dtype.itemsize)
        # shape tracking: a mixed roster always accounts shapes; the
        # shape-aware policy additionally scores with them (and works on a
        # homogeneous fleet, where it degenerates to least-loaded)
        self._track_shapes = cfg.heterogeneous or cfg.dispatch == "shape-aware"
        #: The per-(shape, bucket) service-rate model (None when untracked);
        #: seeded from the per-shape probe batches at the start of each run.
        self.scorer: Optional[ShapeScorer] = \
            ShapeScorer() if self._track_shapes else None
        self._profile_fn = make_profile_fn(self.sampler,
                                           graph.feature_length) \
            if self._track_shapes else None
        self._dispatch = _build_dispatch(cfg.dispatch, graph.num_vertices,
                                         initial_chips, scorer=self.scorer,
                                         profile_fn=self._profile_fn)
        self._probe_by_shape: Dict[str, float] = {}
        #: The control plane of the most recent :meth:`run` (None when fixed).
        self.control: Optional[ControlPlane] = None
        #: The batcher of the most recent :meth:`run` (None before a run);
        #: tests replay ``ContinuousBatcher.join_log`` through it to prove
        #: the late-join budgets held.
        self.batcher = None
        #: Streaming applier / consistency tracker, or ``None`` on a
        #: static run (see :mod:`repro.serving.streaming`).
        self.stream: Optional[StreamState] = None
        self.consistency: Optional[ConsistencyStats] = None
        if updates is not None:
            self.consistency = ConsistencyStats(
                policy=updates.policy,
                budget_versions=updates.staleness_budget_versions)
            self.stream = StreamState(
                graph, self.sampler, updates, self.consistency,
                result_cache=self.result_cache, chips=self.chips,
                shard_executor=self.shard_executor, observe=observe)

    # ------------------------------------------------------------------ #
    # Adaptive time scales
    # ------------------------------------------------------------------ #
    def probe_service_for_shape(self, shape: str) -> float:
        """Probe-batch service time on one chip shape (memoised per shape)."""
        cached = self._probe_by_shape.get(shape)
        if cached is None:
            cfg = self.config
            cached = probe_batch_service_time_s(
                self._shapes[shape], self.sampler, self.model,
                self.dataset_name, cfg.max_batch_size,
                self.graph.num_vertices, cfg.seed)
            self._probe_by_shape[shape] = cached
        return cached

    @property
    def probe_service_time_s(self) -> float:
        """Service time of one full batch of uniformly-drawn distinct targets.

        Computed once per shape and reused to calibrate the arrival rate and
        to resolve the adaptive timeout / SLO defaults.  On a heterogeneous
        fleet this is the **slowest** shape's probe time, so adaptive
        timeouts and SLOs stay meetable no matter where a batch lands; a
        homogeneous fleet reduces to the single probe it always ran.
        """
        return max(self.probe_service_for_shape(shape)
                   for shape in self._shapes)

    @property
    def slo_s(self) -> float:
        """The latency SLO: configured value, or a multiple of the probe service."""
        if self.config.slo_s is not None:
            return self.config.slo_s
        return _SLO_SERVICE_MULTIPLE * self.probe_service_time_s

    @property
    def batch_timeout_s(self) -> float:
        """Timeout-flush budget: configured, or a multiple of the probe service."""
        if self.config.batch_timeout_s is not None:
            return self.config.batch_timeout_s
        return _TIMEOUT_SERVICE_MULTIPLE * self.probe_service_time_s

    @property
    def join_window_s(self) -> float:
        """Continuous-batching join window: configured, or the batch timeout."""
        if self.config.join_window_s is not None:
            return self.config.join_window_s
        return self.batch_timeout_s

    @property
    def staleness_s(self) -> float:
        """Continuous-batching staleness budget: configured, or half the SLO."""
        if self.config.staleness_s is not None:
            return self.config.staleness_s
        return 0.5 * self.slo_s

    def _signature_fn(self):
        """``request -> minhash signature`` bound to this fleet's sampler
        (see :func:`repro.serving.batching.make_signature_fn`)."""
        cfg = self.config
        return make_signature_fn(self.sampler, cfg.num_hops, cfg.fanout,
                                 overlap_k=cfg.overlap_k)

    def _seed_scorer(self) -> None:
        """Prime the shape scorer from the per-shape probe batches.

        The probe batch has one well-defined profile bucket; each shape's
        measured probe time over the probe's fused size seeds that bucket's
        rate, so the first real batch of the common regime can already be
        scored.  Other buckets stay cold until traffic warms them (the
        dispatcher falls back to least-loaded there).  Idempotent: seeds
        never clobber rates a previous run learned.
        """
        cfg = self.config
        targets = probe_targets(self.graph.num_vertices, cfg.max_batch_size,
                                cfg.seed)
        fused, naive = self.sampler.fused_size(
            (int(t), None, None) for t in targets)
        bucket = BatchProfile(est_fused_vertices=fused,
                              est_naive_vertices=naive,
                              batch_size=len(targets),
                              feature_length=self.graph.feature_length).bucket
        for shape in self._shapes:
            self.scorer.seed(shape, bucket,
                             self.probe_service_for_shape(shape)
                             / max(fused, 1))

    # ------------------------------------------------------------------ #
    # Service-time model
    # ------------------------------------------------------------------ #
    def batch_service_time_s(self, chip: Chip, batch: Batch,
                             account: bool = True,
                             now: float = 0.0) -> float:
        """Simulated execution time of the fused subgraph batch on ``chip``
        (see :func:`fused_batch_service_time_s`).

        On a sharded fleet (>1 shard) the batch executes across the whole
        chip group instead (:meth:`ShardExecutor.service_time_s`); a
        one-shard group takes this single-chip path verbatim, which is what
        makes its report bit-for-bit identical to an unsharded run.
        """
        if self.shard_executor is not None \
                and self.shard_executor.plan.num_shards > 1:
            return self.shard_executor.service_time_s(
                batch, reuse_discount=self.config.reuse_discount,
                account=account, now=now)
        return fused_batch_service_time_s(
            chip, self.sampler, self.model, batch,
            dataset_name=self.dataset_name,
            reuse_discount=self.config.reuse_discount, account=account,
            stream=self.stream, now=now)

    def calibrate_rate(self, utilization_target: float = 0.7) -> float:
        """Arrival rate that loads the fleet to ``utilization_target``.

        A probe batch of ``max_batch_size`` distinct uniformly-drawn targets is
        simulated once per chip shape; the fleet's aggregate request
        throughput at full utilisation sums each chip's
        ``max_batch_size / service_time`` over the configured roster (which
        for a homogeneous fleet is the familiar
        ``num_chips * max_batch_size / service_time``).  Targets above 1
        deliberately overload the fleet (a queueing-study regime).
        """
        if not 0 < utilization_target:
            raise ValueError("utilization_target must be positive")
        cfg = self.config
        batch_size = min(cfg.max_batch_size, self.graph.num_vertices)
        capacity_rps = sum(
            batch_size / max(self.probe_service_for_shape(shape), 1e-12)
            for shape, _ in cfg.chip_roster())
        return utilization_target * capacity_rps

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[Request],
            rate_rps: float = 0.0) -> ServingReport:
        """Serve ``requests`` (sorted by arrival) and return the report."""
        cfg = self.config
        report = ServingReport(
            model_name=getattr(self.model, "name", self.model.__class__.__name__),
            dataset_name=self.dataset_name,
            num_chips=len(self.chips),
            batch_policy=cfg.batch_policy,
            dispatch_policy=cfg.dispatch,
            rate_rps=rate_rps,
            slo_s=self.slo_s,
        )
        if not requests:
            report.chips = [chip.stats for chip in self.chips]
            return report

        batcher = build_batch_policy(
            cfg.batch_policy, max_batch_size=cfg.max_batch_size,
            timeout_s=self.batch_timeout_s, slo_s=self.slo_s,
            signature_fn=self._signature_fn()
            if cfg.batch_policy in ("overlap", "continuous") else None,
            min_overlap=cfg.min_overlap, pool_factor=cfg.pool_factor,
            join_window_s=self.join_window_s, staleness_s=self.staleness_s)
        self.batcher = batcher
        observe = self.observe
        if observe is not None:
            batcher.instrumentation = observe
        batching_stats = BatchingStats(policy=cfg.batch_policy)
        overlap_aware = cfg.batch_policy in ("overlap", "continuous")
        overlap_ewma = 0.0
        hetero_stats: Optional[HeteroStats] = None
        if self._track_shapes:
            self._seed_scorer()
            hetero_stats = HeteroStats(dispatch_policy=cfg.dispatch)
            if isinstance(self._dispatch, _ShapeAwareDispatch):
                # counters are per run; the scorer's learned rates persist
                self._dispatch.scored = self._dispatch.fallback = 0
        events: List[Tuple[float, int, int, object]] = []
        seq = 0
        for request in requests:
            heapq.heappush(events, (request.arrival_time_s, seq, _ARRIVAL, request))
            seq += 1
        if self.stream is not None:
            for event in self.updates.events:
                heapq.heappush(events, (event.arrival_time_s, seq,
                                        _UPDATE, event))
                seq += 1
        arrivals_left = len(requests)
        dispatch_meta: Dict[int, float] = {}      # batch_id -> dispatch time
        start_meta: Dict[int, float] = {}         # batch_id -> service start time
        scheduled_flush: Optional[float] = None

        # time-weighted in-flight integral for the avg queue-pressure metric
        in_flight = 0
        t0 = requests[0].arrival_time_s
        last_t = t0
        in_flight_area = 0.0

        # ---------------- control plane (elastic runs only) --------------- #
        control: Optional[ControlPlane] = None
        scaler: Optional[FleetScaler] = None
        probe_batch = min(cfg.max_batch_size, self.graph.num_vertices)
        cost_per_request_s = self.probe_service_time_s / probe_batch
        backlog_cost_s = 0.0
        request_cost_s: Dict[int, float] = {}
        arrivals_interval = completions_interval = 0
        violations_interval = shed_interval = 0
        busy_snapshot_s = 0.0
        for chip in self.chips:
            chip.added_s = t0
            chip.ready_s = t0
        if self.control_config is not None:
            control = ControlPlane(self.control_config)
            control.bind(
                [TenantBinding(name="", slo_s=self.slo_s, num_hops=cfg.num_hops,
                               fanout=cfg.fanout)],
                initial_chips=len(self.chips),
                probe_service_s=self.probe_service_time_s,
                capacity_per_chip_rps=probe_batch
                / max(self.probe_service_time_s, 1e-12))
            self.control = control
            if observe is not None:
                control.instrumentation = observe
            heapq.heappush(events, (t0 + control.control_interval_s, seq,
                                    _CONTROL, None))
            seq += 1

            def new_chip(shape: Optional[str] = None) -> Chip:
                if shape is None:
                    shape, hw = cfg.base_shape, cfg.hw
                else:
                    hw = self._shapes[shape]
                chip = Chip(self._next_chip_id, hw,
                            cfg.feature_cache_size, shape=shape)
                self._next_chip_id += 1
                return chip

            def schedule_ready(chip: Chip) -> None:
                nonlocal seq
                heapq.heappush(events, (chip.ready_s, seq, _CHIP_READY, chip))
                seq += 1

            chooser: Optional[ShapeChooser] = None
            if len(self._shapes) > 1:
                chooser = ShapeChooser(
                    self.control_config.scale_shape, self._shapes,
                    scorers=[self.scorer] if self.scorer is not None else [])
            scaler = FleetScaler(
                self.chips, control, new_chip, schedule_ready,
                # drain the shape the demand needs least (heterogeneous),
                # else the emptiest queue so the least work gets stranded
                drain_victim=chooser.retire_victim if chooser is not None
                else lambda actives: min(
                    actives,
                    key=lambda c: (c.outstanding_requests, -c.chip_id)),
                shape_chooser=chooser)

        # ---------------- metrics scraping (instrumented runs) ------------ #
        metrics_interval_s = 0.0
        if observe is not None and observe.wants_metrics:
            from .observe import METRICS_PROBE_MULTIPLE
            metrics_interval_s = observe.metrics_interval_s \
                if observe.metrics_interval_s is not None \
                else METRICS_PROBE_MULTIPLE * self.probe_service_time_s
            heapq.heappush(events, (t0 + metrics_interval_s, seq,
                                    _METRICS, None))
            seq += 1

        def metrics_snapshot(now: float) -> Dict:
            gauges: Dict = {
                "repro_queue_depth": batcher.pending_count,
                "repro_in_flight_requests": in_flight,
                "repro_in_flight_batches": sum(
                    len(c.queue) + (1 if c.busy else 0)
                    for c in self.chips),
                "repro_overlap_ratio_ewma": overlap_ewma,
            }
            if self.shard_executor is not None:
                shard_stats = self.shard_executor.stats
                gauges["repro_halo_hit_rate"] = shard_stats.halo_hit_rate
                gauges["repro_halo_bytes_moved"] = shard_stats.halo_bytes_moved
                gauges["repro_shard_load_imbalance"] = \
                    shard_stats.load_imbalance
            elapsed = now - t0
            if elapsed > 0:
                for shape in self._shapes:
                    members = [c for c in self.chips if c.shape == shape]
                    busy = sum(c.stats.busy_s for c in members)
                    gauges[("repro_busy_fraction", (("shape", shape),))] = \
                        busy / (elapsed * len(members)) if members else 0.0
            return gauges

        def schedulable_chips() -> List[Chip]:
            return [chip for chip in self.chips if chip.schedulable]

        def schedule_flush(now: float) -> None:
            nonlocal scheduled_flush, seq
            deadline = batcher.next_deadline(now)
            if deadline is not None and deadline != scheduled_flush:
                heapq.heappush(events, (max(deadline, now), seq, _FLUSH, None))
                seq += 1
                scheduled_flush = deadline

        def dispatch(batch: Batch, now: float) -> None:
            nonlocal seq
            chip = self._dispatch.select(schedulable_chips(), batch)
            chip.queue.append((batch, now))
            dispatch_meta[batch.batch_id] = now
            depth = sum(b.size for b, _ in chip.queue)
            report.max_queue_depth = max(report.max_queue_depth, depth)
            if not chip.busy:
                start_service(chip, now)

        def start_service(chip: Chip, now: float) -> None:
            nonlocal seq, cost_per_request_s, overlap_ewma
            batch, _ = chip.queue.popleft()
            # seal before costing: a batch being served can take no joins,
            # and the service time must cover its final membership
            batcher.on_service_start(batch)
            chip.current = batch
            start_meta[batch.batch_id] = now
            if self.stream is not None:
                # differential consistency check at the moment of service:
                # observation only, so it cannot change simulated timings
                self.stream.check_batch(batch, now)
            service_s = self.batch_service_time_s(chip, batch, now=now)
            if hetero_stats is not None:
                account_batch_service(
                    self.scorer, hetero_stats, batch, self._profile_fn,
                    chip.shape, service_s,
                    {c.shape for c in self.chips if c.state == "active"},
                    # shape-aware dispatch already counted demand at
                    # selection time; oblivious dispatch counts it here
                    note_demand=not isinstance(self._dispatch,
                                               _ShapeAwareDispatch))
            batcher.observe_service_time(service_s)
            batching_stats.observe_batch(batch)
            overlap_ewma = _COST_EWMA_ALPHA * batch.overlap_ratio \
                + (1 - _COST_EWMA_ALPHA) * overlap_ewma
            observed = service_s / batch.size
            cost_per_request_s = _COST_EWMA_ALPHA * observed \
                + (1 - _COST_EWMA_ALPHA) * cost_per_request_s
            chip.stats.busy_s += service_s
            heapq.heappush(events, (now + service_s, seq, _COMPLETION, chip))
            seq += 1
            # the service observation may have tightened an SLO-aware
            # deadline for requests already pending -- re-arm the timer
            schedule_flush(now)

        def complete(chip: Chip, now: float) -> None:
            nonlocal in_flight, backlog_cost_s
            nonlocal completions_interval, violations_interval
            batch = chip.current
            chip.current = None
            chip.stats.batches_served += 1
            chip.stats.requests_served += batch.size
            dispatched = dispatch_meta.pop(batch.batch_id)
            started = start_meta.pop(batch.batch_id)
            for request in batch.requests:
                report.records.append(RequestRecord(
                    request_id=request.request_id,
                    target_vertex=request.target_vertex,
                    arrival_time_s=request.arrival_time_s,
                    # a late-joined request entered after the batch was
                    # dispatched: its batching wait ends at its own arrival
                    dispatch_time_s=max(dispatched, request.arrival_time_s),
                    service_start_s=started,
                    completion_time_s=now,
                    cache_hit=False,
                    chip_id=chip.chip_id,
                    batch_id=batch.batch_id,
                    degrade_level=request.degrade_level,
                ))
                # degraded answers are lower fidelity: keep them out of the
                # result cache so later hits never silently inherit the loss
                if request.degrade_level == 0:
                    self.result_cache.put(request.target_vertex, now)
                    if self.stream is not None:
                        self.stream.register_result(request.target_vertex,
                                                    now)
                in_flight -= 1
                completions_interval += 1
                if now - request.arrival_time_s > self.slo_s:
                    violations_interval += 1
                backlog_cost_s -= request_cost_s.pop(request.request_id, 0.0)
            if observe is not None:
                observe.on_batch_complete(now, chip, batch, dispatched,
                                          started)
                observe.on_shard_batch_complete(now, batch, started)
            if chip.queue:
                start_service(chip, now)
            elif chip.state == "draining":
                scaler.retire(chip, now)

        def control_tick(now: float) -> None:
            nonlocal seq, busy_snapshot_s
            nonlocal arrivals_interval, completions_interval
            nonlocal violations_interval, shed_interval
            active, warming, draining = scaler.counts()
            busy_total_s = sum(c.stats.busy_s for c in self.chips)
            interval_s = control.control_interval_s
            utilization = (busy_total_s - busy_snapshot_s) \
                / (interval_s * max(1, active))
            obs = ControlObservation(
                now_s=now,
                interval_s=interval_s,
                active_chips=active,
                warming_chips=warming,
                draining_chips=draining,
                queue_depth=in_flight,
                backlog_cost_s=backlog_cost_s,
                arrivals=arrivals_interval,
                completions=completions_interval,
                violations=violations_interval,
                shed=shed_interval,
                utilization=min(1.0, utilization),
                cost_per_request_s=cost_per_request_s,
                slo_s=self.slo_s,
            )
            target = control.tick(obs)
            scaler.scale_to(target, now)
            busy_snapshot_s = busy_total_s
            arrivals_interval = completions_interval = 0
            violations_interval = shed_interval = 0
            if arrivals_left > 0 or in_flight > 0:
                heapq.heappush(events, (now + interval_s, seq, _CONTROL, None))
                seq += 1

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == _METRICS:
                # handled before the in-flight integral update so the
                # float accounting (and hence the report) stays bit-for-bit
                # identical to an uninstrumented run
                observe.scrape(now, metrics_snapshot(now))
                if arrivals_left > 0 or in_flight > 0:
                    heapq.heappush(events, (now + metrics_interval_s, seq,
                                            _METRICS, None))
                    seq += 1
                continue
            in_flight_area += in_flight * (now - last_t)
            last_t = now
            if kind == _ARRIVAL:
                arrivals_left -= 1
                arrivals_interval += 1
                request: Request = payload
                if self.capture is not None:
                    self.capture.record(request)
                if self.result_cache.get(request.target_vertex) is not None:
                    if self.stream is not None:
                        self.stream.on_result_hit(request.target_vertex, now)
                    done = now + cfg.cache_hit_latency_s
                    report.records.append(RequestRecord(
                        request_id=request.request_id,
                        target_vertex=request.target_vertex,
                        arrival_time_s=request.arrival_time_s,
                        dispatch_time_s=done,
                        service_start_s=done,
                        completion_time_s=done,
                        cache_hit=True,
                    ))
                    if observe is not None:
                        observe.on_cache_hit(now, request, done)
                else:
                    admitted = True
                    if control is not None:
                        est_delay_s = backlog_cost_s \
                            / max(1, len(schedulable_chips()))
                        decision = control.admit(
                            "", now, est_delay_s, cost_per_request_s,
                            overlap_ratio=overlap_ewma if overlap_aware
                            else 0.0)
                        admitted = decision.admitted
                        if not admitted:
                            shed_interval += 1
                        elif decision.level > 0:
                            request = replace(
                                request,
                                degrade_level=decision.level,
                                degrade_hops=decision.num_hops,
                                degrade_fanout=decision.fanout)
                        if admitted:
                            cost = cost_per_request_s * decision.cost_scale
                            request_cost_s[request.request_id] = cost
                            backlog_cost_s += cost
                    if admitted:
                        in_flight += 1
                        # continuous batching: a formed-but-unstarted batch
                        # may absorb the request outright (its completion
                        # will cover it); otherwise accumulate as usual
                        joined = batcher.try_join(request, now)
                        if joined is not None:
                            # the join deepened some chip's queue in place
                            depth = max((sum(b.size for b, _ in c.queue)
                                         for c in self.chips), default=0)
                            report.max_queue_depth = max(
                                report.max_queue_depth, depth)
                        else:
                            batch = batcher.add(request, now)
                            if batch is not None:
                                dispatch(batch, now)
                            # re-arm in every case: formation policies can
                            # emit a subset and leave a deadline pending
                            schedule_flush(now)
                if arrivals_left == 0 and batcher.pending_count \
                        and batcher.next_deadline(now) is None:
                    # end of stream under a pure size cap: drain the remainder
                    for leftover in batcher.drain(now):
                        dispatch(leftover, now)
            elif kind == _FLUSH:
                scheduled_flush = None
                batch = batcher.flush_due(now)
                if batch is not None:
                    dispatch(batch, now)
                schedule_flush(now)
            elif kind == _COMPLETION:
                complete(payload, now)
            elif kind == _UPDATE:
                # recorded before application, mirroring request capture at
                # arrival, so a captured trace replays the offered stream
                if self.capture is not None:
                    self.capture.record_update(payload)
                self.stream.apply(now, payload)
            elif kind == _CONTROL:
                control_tick(now)
            else:  # _CHIP_READY
                scaler.mark_ready(payload, now)

        if observe is not None and observe.wants_metrics:
            # closing scrape (outside the loop, so it cannot perturb the
            # integral): even a run shorter than the interval gets >= 1 row
            observe.scrape(last_t, metrics_snapshot(last_t))
        span = last_t - t0
        report.avg_in_flight = in_flight_area / span if span > 0 else 0.0
        logger.info("served %d requests on %d chips in %.6f s simulated",
                    len(requests), len(self.chips), span)
        report.chips = [chip.stats for chip in self.chips]
        report.cache = self.result_cache.stats
        batching_stats.late_join_rejects = batcher.late_join_rejects
        report.batching = batching_stats
        if hetero_stats is not None:
            for chip in self.chips:
                hetero_stats.shape_counts[chip.shape] = \
                    hetero_stats.shape_counts.get(chip.shape, 0) + 1
            if isinstance(self._dispatch, _ShapeAwareDispatch):
                hetero_stats.scored_batches = self._dispatch.scored
                hetero_stats.fallback_batches = self._dispatch.fallback
            hetero_stats.rates = self.scorer.snapshot()
            report.hetero = hetero_stats
        if self.shard_executor is not None:
            shard_stats = self.shard_executor.stats
            shard_stats.p50_s = report.p50_latency_s
            shard_stats.p95_s = report.p95_latency_s
            shard_stats.p99_s = report.p99_latency_s
            report.sharding = shard_stats
        if control is not None:
            report.control = control.finalize(last_t, self.chips)
        if self.stream is not None:
            self.stream.finalize()
            self.consistency.p99_s = report.p99_latency_s
            report.consistency = self.consistency
        return report


def run_serving(
    dataset: str = "CR",
    model_name: str = "GCN",
    num_requests: int = 1000,
    rate_rps: Optional[float] = None,
    arrival: str = "poisson",
    popularity_skew: float = 0.8,
    config: Optional[FleetConfig] = None,
    trace: Optional[Sequence[float]] = None,
    utilization_target: float = 0.7,
    seed: int = 0,
    control: Optional[ControlConfig] = None,
    peak_factor: float = 4.0,
    observe=None,
    capture=None,
    replay=None,
    update_rate: float = 0.0,
    update_mix: Optional[str] = None,
    invalidation: str = "targeted",
    staleness_budget: int = 0,
    updates=None,
) -> ServingReport:
    """End-to-end convenience: dataset -> traffic -> fleet -> report.

    When ``rate_rps`` is ``None`` the arrival rate is calibrated to load the
    fleet to ``utilization_target`` of its measured batch throughput, so the
    run exhibits realistic queueing on any dataset/model/hardware combination.
    For trace replay the timestamps fix the rate, so no calibration runs and
    the reported rate is the trace's own mean arrival rate.

    ``control`` arms the elastic control plane (see
    :mod:`repro.serving.control`); calibration still sizes the rate against
    the *configured* ``num_chips``, so an autoscaled run is comparable to the
    fixed fleet it elasticised.  ``peak_factor`` only matters for the ramp
    arrival process.  ``observe`` threads an
    :class:`~repro.serving.observe.Instrumentation` hub through the run
    (span traces + metrics); instrumenting never changes the report.

    ``capture`` threads a :class:`~repro.serving.trace.TraceWriter` through
    the run (every offered request is recorded, and the workload/sampling
    parameters a replay needs are stamped into ``capture.meta``); capturing
    never changes the report.  ``replay`` takes a
    :class:`~repro.serving.trace.RequestTrace` and serves its exact request
    stream instead of generating one -- with the same ``config``/``seed``
    the replayed report is bit-for-bit identical to the captured run's.
    """
    config = config or FleetConfig()
    if update_rate < 0:
        raise ValueError("update_rate must be >= 0")
    graph = load_dataset(dataset, seed=seed)
    model = build_model(model_name, input_length=graph.feature_length)
    # streaming updates: the stream object must exist before the simulator
    # (it wraps the graph and rebinds the caches), but its events need the
    # resolved arrival rate -- so they are filled in below, after
    # calibration / replay resolution, and read at run() time
    fill_update_events = False
    if updates is None:
        replayed_updates = replay is not None and replay.num_updates > 0
        if update_rate > 0 or replayed_updates:
            if replayed_updates:
                # the capturing run's policy is part of what made its
                # report; replay it bit-for-bit unless it never stamped one
                invalidation = replay.meta.get("invalidation", invalidation)
                staleness_budget = int(replay.meta.get(
                    "staleness_budget", staleness_budget))
            updates = UpdateStream(events=(), policy=invalidation,
                                   staleness_budget_versions=staleness_budget)
            fill_update_events = True
    simulator = ServingSimulator(graph, model, config, dataset_name=dataset,
                                 control=control, observe=observe,
                                 capture=capture, updates=updates)
    if replay is not None:
        if replay.multi_tenant:
            raise ValueError(
                f"trace was captured from a multi-tenant run (tenants: "
                f"{', '.join(replay.tenant_names)}); replay it through "
                f"run_multi_tenant / `serve --tenants ... --replay`")
        arrival = "trace"
        num_requests = replay.num_requests
        if rate_rps is None:
            # the capturing run stamped its resolved rate so the replayed
            # report's rate_rps field matches bit-for-bit; fall back to the
            # trace's own mean arrival rate for hand-built traces
            stamped = replay.meta.get("rate_rps")
            rate_rps = float(stamped) if stamped is not None \
                else (replay.mean_rate_rps or 1.0)
        trace = replay
    if arrival == "trace":
        if rate_rps is None:
            times = trace_arrival_times(trace or [], num_requests)
            span = float(times[-1] - times[0]) if times.size > 1 else 0.0
            # N arrivals span N-1 inter-arrival gaps
            rate_rps = (times.size - 1) / span if span > 0 \
                else float(max(1, times.size))
    elif rate_rps is None:
        rate_rps = simulator.calibrate_rate(utilization_target)
    if fill_update_events:
        if replay is not None and replay.num_updates > 0:
            updates.events = replay.to_update_events()
        else:
            mix = parse_update_mix(update_mix) if update_mix else None
            updates.events = generate_update_stream(
                graph.num_vertices,
                num_updates=int(round(update_rate * num_requests)),
                rate_ups=update_rate * rate_rps, mix=mix, seed=seed)
    if capture is not None:
        # everything `serve --replay` / `trace-stats` needs to reproduce
        # and characterise this run, stamped before serving begins
        capture.meta.update({
            "kind": "serve", "dataset": dataset, "model": model_name,
            "num_hops": config.num_hops, "fanout": config.fanout,
            "seed": seed, "popularity_skew": popularity_skew,
            "arrival": arrival, "rate_rps": rate_rps,
            "num_chips": config.num_chips,
            "slo_s": simulator.slo_s,
        })
        if updates is not None:
            capture.meta.update({
                "update_rate": update_rate,
                "invalidation": updates.policy,
                "staleness_budget": updates.staleness_budget_versions,
            })
            if update_mix:
                capture.meta["update_mix"] = update_mix
        if replay is not None:
            # re-capturing a replay keeps the original workload's
            # provenance (the offered process, not the replay mechanism),
            # so the new trace file is byte-identical to the one replayed
            for key in ("arrival", "popularity_skew", "seed",
                        "update_rate", "update_mix", "invalidation",
                        "staleness_budget"):
                if key in replay.meta:
                    capture.meta[key] = replay.meta[key]
    workload = WorkloadConfig(num_requests=num_requests, rate_rps=rate_rps,
                              arrival=arrival, popularity_skew=popularity_skew,
                              peak_factor=peak_factor, seed=seed)
    requests = RequestGenerator(graph.num_vertices, workload).generate(trace)
    return simulator.run(requests, rate_rps=rate_rps)
