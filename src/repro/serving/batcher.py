"""Dynamic request batching: flush triggers and the base batcher contract.

Batching amortises the accelerator's per-dispatch overhead (weight streaming,
pipeline fill) across many requests, at the cost of queueing delay for the
requests that arrive first.  Batching has two orthogonal axes:

* **when to flush** (this module) -- ``size`` flushes only when
  ``max_batch_size`` requests are waiting (maximum throughput, unbounded
  tail latency under light load); ``timeout`` additionally flushes when the
  oldest waiting request has been queued for ``timeout_s`` (bounds the
  batching delay); ``slo`` flushes when the oldest request's remaining
  latency budget drops below a safety multiple of the estimated service
  time, where the estimate is an EWMA of service times observed by the
  fleet (adapts the batching delay to how fast the chips currently are);
* **what to co-batch** (:mod:`repro.serving.batching`) -- the *formation*
  policies behind the :data:`repro.serving.batching.BATCH_POLICIES`
  registry (``fifo`` / ``overlap`` / ``continuous``) decide *which* pending
  requests ride together, grouping requests whose sampled neighbourhoods
  overlap so the fused subgraph shrinks, and optionally letting late
  arrivals join an already-formed batch.

All times are **seconds of simulated time** (the CLI exposes milliseconds
and converts).  The batchers are passive and draw no randomness, so batch
formation is deterministic given the request stream: the discrete-event
loops in :mod:`repro.serving.fleet` / :mod:`repro.serving.tenancy` call
:meth:`Batcher.add` on every arrival, ask :meth:`Batcher.next_deadline`
when to schedule a timer, call :meth:`Batcher.flush_due` when that timer
fires, and :meth:`Batcher.drain` at end of stream.

One-clock invariant: ``Batch.created_time_s`` is always stamped from the
``now`` argument of the call that formed the batch -- the *event-loop*
clock -- never from a request's enqueue time or a precomputed deadline.  A
timer that fires late (e.g. superseded by an earlier SLO deadline and
popped afterwards) therefore stamps the time the flush actually happened,
which is what the latency breakdown in :mod:`repro.serving.stats` charges
as batching wait.  ``tests/serving/test_batching.py`` pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional

from .workload import Request

__all__ = [
    "BATCHING_POLICIES",
    "Batch",
    "Batcher",
    "SizeCappedBatcher",
    "TimeoutBatcher",
    "SLOAwareBatcher",
    "build_batcher",
]

#: Flush-trigger policy names accepted by the CLI and :func:`build_batcher`.
#: The batch *formation* policies (``fifo`` / ``overlap`` / ``continuous``)
#: live in :data:`repro.serving.batching.BATCH_POLICIES`.
BATCHING_POLICIES = ("size", "timeout", "slo")

_EPS = 1e-12


@dataclass
class Batch:
    """A group of requests fused into one accelerator dispatch.

    Batches never mix tenants: multi-tenant serving runs one batcher per
    tenant, so ``tenant`` is simply stamped from the owning batcher (empty in
    single-tenant serving).

    ``created_time_s`` is the event-loop clock at formation (seconds of
    simulated time); late joins admitted by the ``continuous`` policy
    append to ``requests`` and bump ``late_joins`` but never rewrite the
    formation timestamp.  ``fused_vertices`` / ``naive_vertices`` /
    ``overlap_ratio`` are stamped by the fleet's service-time model when
    the batch starts service: the deduped fused-subgraph vertex count, the
    sum of every member request's standalone neighbourhood size, and
    ``1 - fused/naive`` (the fraction of neighbourhood work the fusion
    eliminated).

    ``profile`` is the demand stamp of heterogeneous fleets: a
    :class:`~repro.serving.hetero.BatchProfile` estimated *before* service
    (shape-aware dispatch scores chip shapes with it).  It describes the
    batch's current membership, so the ``continuous`` policy resets it to
    ``None`` on every admitted late join and the dispatcher re-stamps
    lazily.  Homogeneous shape-oblivious runs leave it ``None`` throughout.

    ``phase_cycles`` is the cycle-model phase breakdown (aggregation vs.
    combination vs. DRAM-busy cycles) of the batch's fused-subgraph
    simulation, stamped by the service-time model when the batch starts
    service; the observability layer (:mod:`repro.serving.observe`)
    attaches it to the batch's trace span.
    """

    batch_id: int
    requests: List[Request]
    created_time_s: float
    tenant: str = ""
    late_joins: int = 0
    fused_vertices: int = 0
    naive_vertices: int = 0
    overlap_ratio: float = 0.0
    profile: Optional[object] = None
    phase_cycles: Optional[Dict[str, int]] = None

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival_s(self) -> float:
        return min(r.arrival_time_s for r in self.requests)


@dataclass
class Batcher:
    """Base class: size-capped accumulation plus a policy-defined deadline.

    Subclasses override :meth:`next_deadline` (flush triggers) and/or
    :meth:`flush` (formation policies, :mod:`repro.serving.batching`).  The
    base class keeps ``_pending`` in arrival order (the event loops feed it
    arrivals in nondecreasing time), which every deadline policy relies on.
    ``late_joins`` / ``late_join_rejects`` stay zero except under the
    ``continuous`` formation policy.
    """

    max_batch_size: int = 32
    policy: str = "size"
    tenant: str = ""
    late_joins: int = field(default=0, repr=False)
    late_join_rejects: int = field(default=0, repr=False)
    _pending: List[Request] = field(default_factory=list, repr=False)
    _next_batch_id: int = field(default=0, repr=False)

    #: Observability hub (:class:`repro.serving.observe.Instrumentation`);
    #: the event loops set it per run, ``None`` means uninstrumented.  A
    #: ClassVar so the default costs nothing per instance and formation
    #: stays untouched when observability is off.
    instrumentation: ClassVar[Optional[object]] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def add(self, request: Request, now: float) -> Optional[Batch]:
        """Queue ``request``; returns a batch when the size cap is reached.

        ``now`` is the event-loop clock (seconds); it stamps the batch when
        the size cap fires, so a cap-triggered batch is formed at the
        arrival that completed it.
        """
        self._pending.append(request)
        if len(self._pending) >= self.max_batch_size:
            return self.flush(now)
        return None

    def flush(self, now: float) -> Optional[Batch]:
        """Unconditionally emit pending requests as one batch (or ``None``).

        The base policy emits *all* pending requests in arrival order;
        formation policies may emit a subset and keep the rest pending (so
        callers must re-arm the flush timer after every emission).  The
        batch is stamped with ``now``, the event-loop clock.
        """
        if not self._pending:
            return None
        batch = Batch(batch_id=self._next_batch_id, requests=self._pending,
                      created_time_s=now, tenant=self.tenant)
        self._next_batch_id += 1
        self._pending = []
        if self.instrumentation is not None:
            self.instrumentation.on_batch_formed(now, batch)
        return batch

    def flush_due(self, now: float) -> Optional[Batch]:
        """Emit a batch if the policy deadline has been reached.

        Late-firing timers are fine: the emitted batch carries ``now`` (the
        event-loop clock at the actual flush), not the deadline that armed
        the timer and not any request's enqueue time.
        """
        deadline = self.next_deadline(now)
        if deadline is not None and now >= deadline - _EPS:
            return self.flush(now)
        return None

    def drain(self, now: float) -> List[Batch]:
        """Emit *everything* still pending (end of stream).

        The base policy returns at most one batch; formation policies that
        emit bounded groups per flush return several.  Always empties the
        pending queue.
        """
        batches: List[Batch] = []
        while True:
            batch = self.flush(now)
            if batch is None:
                return batches
            batches.append(batch)

    def next_deadline(self, now: float) -> Optional[float]:
        """Absolute time at which the pending requests must be flushed.

        ``None`` means the policy never flushes on time alone (pure size cap).
        """
        return None

    def try_join(self, request: Request, now: float) -> Optional[Batch]:
        """Admit ``request`` into an already-formed batch, if the policy can.

        Returns the joined batch (its ``requests`` now include ``request``)
        or ``None`` when the policy does not support late joins (every
        policy except ``continuous``) or no open batch is eligible.  The
        event loops call this *before* :meth:`add` on every admitted
        cache-missing arrival.
        """
        return None

    def on_service_start(self, batch: Batch) -> None:
        """Seal ``batch``: a chip started serving it, no more late joins."""

    def observe_service_time(self, service_s: float) -> None:
        """Feedback hook: the fleet reports each batch's service time.

        ``service_s`` is seconds of simulated time; only the ``slo`` policy
        consumes it (its flush deadline tracks an EWMA of these).
        """


class SizeCappedBatcher(Batcher):
    """Flush only on the size cap (the event loops drain leftovers at EOS).

    Deterministic: batches are the arrival-order prefix groups of the
    request stream, independent of wall-clock time.
    """

    def __init__(self, max_batch_size: int = 32, tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, policy="size",
                         tenant=tenant)


class TimeoutBatcher(Batcher):
    """Flush on the size cap or when the oldest request ages past ``timeout_s``.

    ``timeout_s`` is seconds of simulated time; the fleet defaults it
    adaptively to a multiple of the probe-batch service time (see
    :mod:`repro.serving.fleet`).  The deadline tracks the oldest *pending*
    request, so every request leaves the queue within ``timeout_s`` of its
    arrival even when formation policies emit subsets.
    """

    def __init__(self, max_batch_size: int = 32, timeout_s: float = 5e-4,
                 tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, policy="timeout",
                         tenant=tenant)
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = float(timeout_s)

    def next_deadline(self, now: float) -> Optional[float]:
        if not self._pending:
            return None
        return self._pending[0].arrival_time_s + self.timeout_s


class SLOAwareBatcher(Batcher):
    """Flush so the oldest request can still meet its latency SLO.

    The deadline leaves ``safety_factor`` times the estimated service time as
    headroom inside the ``slo_s`` budget (both in seconds of simulated
    time).  Before any feedback arrives the estimate defaults to a quarter
    of the SLO.  The EWMA only consumes service times the fleet reports via
    :meth:`observe_service_time`, so batch formation stays deterministic
    for a deterministic simulation -- but note the estimate *does* reflect
    feature-cache reuse on the chips: warm chips shorten service times,
    which loosens the flush deadline.
    """

    def __init__(self, max_batch_size: int = 32, slo_s: float = 2e-3,
                 safety_factor: float = 1.5, ewma_alpha: float = 0.3,
                 tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, policy="slo",
                         tenant=tenant)
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.slo_s = float(slo_s)
        self.safety_factor = float(safety_factor)
        self.ewma_alpha = float(ewma_alpha)
        self._service_estimate_s: Optional[float] = None

    @property
    def service_estimate_s(self) -> float:
        if self._service_estimate_s is None:
            return self.slo_s / 4.0
        return self._service_estimate_s

    def observe_service_time(self, service_s: float) -> None:
        if self._service_estimate_s is None:
            self._service_estimate_s = service_s
        else:
            a = self.ewma_alpha
            self._service_estimate_s = a * service_s + (1 - a) * self._service_estimate_s

    def next_deadline(self, now: float) -> Optional[float]:
        if not self._pending:
            return None
        budget = max(0.0, self.slo_s - self.safety_factor * self.service_estimate_s)
        return self._pending[0].arrival_time_s + budget


def build_batcher(policy: str, max_batch_size: int = 32, timeout_s: float = 5e-4,
                  slo_s: float = 2e-3, tenant: str = "") -> Batcher:
    """Construct the flush-trigger batcher named by ``policy``.

    Only the :data:`BATCHING_POLICIES` trio lives here; the formation
    policies (``fifo`` / ``overlap`` / ``continuous``) are built by
    :func:`repro.serving.batching.build_batch_policy`, which falls back to
    this function for the trio.  ``timeout_s`` / ``slo_s`` are seconds.
    """
    if policy == "size":
        return SizeCappedBatcher(max_batch_size=max_batch_size, tenant=tenant)
    if policy == "timeout":
        return TimeoutBatcher(max_batch_size=max_batch_size, timeout_s=timeout_s,
                              tenant=tenant)
    if policy == "slo":
        return SLOAwareBatcher(max_batch_size=max_batch_size, slo_s=slo_s,
                               tenant=tenant)
    raise ValueError(f"unknown batching policy {policy!r}; "
                     f"choose from {BATCHING_POLICIES}")
