"""Dynamic request batching policies.

Batching amortises the accelerator's per-dispatch overhead (weight streaming,
pipeline fill) across many requests, at the cost of queueing delay for the
requests that arrive first.  Three policies cover the classic trade-off:

* ``size``    -- flush only when ``max_batch_size`` requests are waiting
  (maximum throughput, unbounded tail latency under light load);
* ``timeout`` -- additionally flush when the oldest waiting request has been
  queued for ``timeout_s`` (bounds the batching delay);
* ``slo``     -- flush when the oldest request's remaining latency budget
  drops below a safety multiple of the estimated service time, where the
  estimate is an EWMA of service times observed by the fleet (adapts the
  batching delay to how fast the chips currently are).

The batchers are passive: the discrete-event loop in
:mod:`repro.serving.fleet` calls :meth:`Batcher.add` on every arrival, asks
:meth:`Batcher.next_deadline` when to schedule a timer, and calls
:meth:`Batcher.flush_due` when that timer fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .workload import Request

__all__ = [
    "BATCHING_POLICIES",
    "Batch",
    "Batcher",
    "SizeCappedBatcher",
    "TimeoutBatcher",
    "SLOAwareBatcher",
    "build_batcher",
]

#: Policy names accepted by the CLI and :func:`build_batcher`.
BATCHING_POLICIES = ("size", "timeout", "slo")

_EPS = 1e-12


@dataclass
class Batch:
    """A group of requests fused into one accelerator dispatch.

    Batches never mix tenants: multi-tenant serving runs one batcher per
    tenant, so ``tenant`` is simply stamped from the owning batcher (empty in
    single-tenant serving).
    """

    batch_id: int
    requests: List[Request]
    created_time_s: float
    tenant: str = ""

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival_s(self) -> float:
        return min(r.arrival_time_s for r in self.requests)


@dataclass
class Batcher:
    """Base class: size-capped accumulation plus a policy-defined deadline."""

    max_batch_size: int = 32
    policy: str = "size"
    tenant: str = ""
    _pending: List[Request] = field(default_factory=list, repr=False)
    _next_batch_id: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def add(self, request: Request, now: float) -> Optional[Batch]:
        """Queue ``request``; returns a batch when the size cap is reached."""
        self._pending.append(request)
        if len(self._pending) >= self.max_batch_size:
            return self.flush(now)
        return None

    def flush(self, now: float) -> Optional[Batch]:
        """Unconditionally emit the pending requests as a batch."""
        if not self._pending:
            return None
        batch = Batch(batch_id=self._next_batch_id, requests=self._pending,
                      created_time_s=now, tenant=self.tenant)
        self._next_batch_id += 1
        self._pending = []
        return batch

    def flush_due(self, now: float) -> Optional[Batch]:
        """Emit the pending batch if its deadline has been reached."""
        deadline = self.next_deadline(now)
        if deadline is not None and now >= deadline - _EPS:
            return self.flush(now)
        return None

    def next_deadline(self, now: float) -> Optional[float]:
        """Absolute time at which the pending requests must be flushed.

        ``None`` means the policy never flushes on time alone (pure size cap).
        """
        return None

    def observe_service_time(self, service_s: float) -> None:
        """Feedback hook: the fleet reports each batch's service time."""


class SizeCappedBatcher(Batcher):
    """Flush only on the size cap (the event loop flushes leftovers at EOS)."""

    def __init__(self, max_batch_size: int = 32, tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, policy="size",
                         tenant=tenant)


class TimeoutBatcher(Batcher):
    """Flush on the size cap or when the oldest request ages past ``timeout_s``."""

    def __init__(self, max_batch_size: int = 32, timeout_s: float = 5e-4,
                 tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, policy="timeout",
                         tenant=tenant)
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = float(timeout_s)

    def next_deadline(self, now: float) -> Optional[float]:
        if not self._pending:
            return None
        return self._pending[0].arrival_time_s + self.timeout_s


class SLOAwareBatcher(Batcher):
    """Flush so the oldest request can still meet its latency SLO.

    The deadline leaves ``safety_factor`` times the estimated service time as
    headroom inside the ``slo_s`` budget.  Before any feedback arrives the
    estimate defaults to a quarter of the SLO.
    """

    def __init__(self, max_batch_size: int = 32, slo_s: float = 2e-3,
                 safety_factor: float = 1.5, ewma_alpha: float = 0.3,
                 tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, policy="slo",
                         tenant=tenant)
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.slo_s = float(slo_s)
        self.safety_factor = float(safety_factor)
        self.ewma_alpha = float(ewma_alpha)
        self._service_estimate_s: Optional[float] = None

    @property
    def service_estimate_s(self) -> float:
        if self._service_estimate_s is None:
            return self.slo_s / 4.0
        return self._service_estimate_s

    def observe_service_time(self, service_s: float) -> None:
        if self._service_estimate_s is None:
            self._service_estimate_s = service_s
        else:
            a = self.ewma_alpha
            self._service_estimate_s = a * service_s + (1 - a) * self._service_estimate_s

    def next_deadline(self, now: float) -> Optional[float]:
        if not self._pending:
            return None
        budget = max(0.0, self.slo_s - self.safety_factor * self.service_estimate_s)
        return self._pending[0].arrival_time_s + budget


def build_batcher(policy: str, max_batch_size: int = 32, timeout_s: float = 5e-4,
                  slo_s: float = 2e-3, tenant: str = "") -> Batcher:
    """Construct the batcher named by ``policy`` (see :data:`BATCHING_POLICIES`)."""
    if policy == "size":
        return SizeCappedBatcher(max_batch_size=max_batch_size, tenant=tenant)
    if policy == "timeout":
        return TimeoutBatcher(max_batch_size=max_batch_size, timeout_s=timeout_s,
                              tenant=tenant)
    if policy == "slo":
        return SLOAwareBatcher(max_batch_size=max_batch_size, slo_s=slo_s,
                               tenant=tenant)
    raise ValueError(f"unknown batching policy {policy!r}; "
                     f"choose from {BATCHING_POLICIES}")
