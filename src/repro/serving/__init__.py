"""Online inference serving on a fleet of HyGCN accelerators.

The serving subsystem turns the single-shot simulator into an online-serving
scenario: a stream of per-target-vertex requests (:mod:`repro.serving.workload`)
is expanded into k-hop subgraphs (:mod:`repro.serving.sampler`), fused into
batches -- flush triggers in :mod:`repro.serving.batcher`, overlap-aware and
continuous batch *formation* in :mod:`repro.serving.batching` --
short-circuited by a result cache
(:mod:`repro.serving.cache`) and dispatched across simulated chips whose
service times drive a discrete-event clock (:mod:`repro.serving.fleet`);
latency/throughput/SLO metrics land in :mod:`repro.serving.stats`.
:mod:`repro.serving.tenancy` layers multi-tenancy on top: several tenants
(model + dataset + traffic + SLO) share one fleet behind a weighted-fair
deficit-round-robin scheduler, with fairness and cross-tenant isolation
metrics in the report.  :mod:`repro.serving.hetero` opens the hardware
axis: fleets may mix HyGCN chip *shapes* (aggregation-heavy,
combination-heavy, balanced) described by a :class:`FleetSpec`, with
``shape-aware`` dispatch routing each batch to the shape that serves its
profile fastest and the control plane choosing which shape to scale.
:mod:`repro.serving.sharding` opens the *dataset* axis: one graph
partitioned across the whole fleet (``hash``/``locality`` behind the
:data:`PARTITIONERS` registry), every batch split into per-shard
sub-batches that execute concurrently with modelled halo-exchange
traffic and per-chip halo caches.  :mod:`repro.serving.trace` makes the
offered request stream a first-class artifact -- capture
(:class:`TraceWriter`), a versioned compact on-disk codec, bit-for-bit
replay and workload characterisation -- and
:mod:`repro.serving.loadtest` drives the simulator open-loop to the SLO
knee (max sustainable RPS), the repo's measured capacity trajectory.
"""

from .batcher import (
    BATCHING_POLICIES,
    Batch,
    Batcher,
    SizeCappedBatcher,
    SLOAwareBatcher,
    TimeoutBatcher,
    build_batcher,
)
from .batching import (
    ALL_BATCH_POLICIES,
    BATCH_POLICIES,
    ContinuousBatcher,
    FIFOBatcher,
    LateJoin,
    OverlapBatcher,
    build_batch_policy,
    make_signature_fn,
    resolve_signature_hops,
)
from .cache import CacheStats, LRUCache
from .control import (
    AUTOSCALE_POLICIES,
    AutoscalePolicy,
    ControlConfig,
    ControlObservation,
    ControlPlane,
    DegradeLevel,
    EWMAPolicy,
    PIDPolicy,
    TenantBinding,
    ThresholdPolicy,
    TokenBucket,
    build_autoscale_policy,
    default_degradation_ladder,
)
from .fleet import (
    DISPATCH_POLICIES,
    Chip,
    FleetConfig,
    ServingSimulator,
    WFQScheduler,
    clear_probe_cache,
    probe_targets,
    run_serving,
)
from .loadtest import (
    KneeResult,
    LoadPoint,
    LoadTestConfig,
    LoadTestReport,
    find_knee,
    run_loadtest,
)
from .hetero import (
    SCALE_SHAPE_POLICIES,
    SHAPE_MIXES,
    SHAPE_PRESETS,
    BatchProfile,
    FleetSpec,
    ShapeChooser,
    ShapeScorer,
    ShapeSpec,
    fleet_spec_for_mix,
    load_fleet_spec,
    make_profile_fn,
    shape_cost,
    shape_hw,
    shape_table,
)
from .observe import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    format_trace_report,
    load_trace,
    trace_report,
    validate_trace,
)
from .sampler import (
    SIGNATURE_HASHES,
    SubgraphSample,
    SubgraphSampler,
    estimate_jaccard,
)
from .sharding import (
    PARTITIONERS,
    InterconnectConfig,
    ShardExecutor,
    ShardingConfig,
    ShardTiming,
    clear_shard_plan_cache,
    shard_plan_for,
)
from .stats import (
    AdmissionStats,
    BatchingStats,
    ChipStats,
    ConsistencyStats,
    ControlStats,
    HeteroStats,
    MultiTenantReport,
    RequestRecord,
    ServingReport,
    ShardingStats,
    percentile,
)
from .streaming import (
    INVALIDATION_POLICIES,
    UPDATE_KINDS,
    StreamState,
    UpdateEvent,
    UpdateStream,
    clear_update_stream_cache,
    generate_update_stream,
    parse_update_mix,
)
from .trace import (
    TRACE_VERSION,
    TRACE_VERSION_UPDATES,
    RequestTrace,
    TraceFormatError,
    TraceWriter,
    format_trace_stats,
    load_request_trace,
    save_request_trace,
    trace_stats,
)
from .tenancy import (
    MultiTenantSimulator,
    TenantConfig,
    TenantRuntime,
    load_tenant_specs,
    run_multi_tenant,
)
from .workload import (
    ARRIVAL_PROCESSES,
    Request,
    RequestGenerator,
    WorkloadConfig,
    bursty_arrival_times,
    merge_tenant_streams,
    poisson_arrival_times,
    ramp_arrival_times,
    split_tenant_stream,
    trace_arrival_times,
)

__all__ = [
    "ALL_BATCH_POLICIES",
    "ARRIVAL_PROCESSES",
    "AUTOSCALE_POLICIES",
    "BATCHING_POLICIES",
    "BATCH_POLICIES",
    "DISPATCH_POLICIES",
    "INVALIDATION_POLICIES",
    "PARTITIONERS",
    "SCALE_SHAPE_POLICIES",
    "SHAPE_MIXES",
    "SHAPE_PRESETS",
    "SIGNATURE_HASHES",
    "TRACE_VERSION",
    "TRACE_VERSION_UPDATES",
    "UPDATE_KINDS",
    "AdmissionStats",
    "AutoscalePolicy",
    "Batch",
    "Batcher",
    "BatchProfile",
    "BatchingStats",
    "CacheStats",
    "Chip",
    "ChipStats",
    "ConsistencyStats",
    "ContinuousBatcher",
    "Counter",
    "FIFOBatcher",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "InterconnectConfig",
    "LateJoin",
    "MetricsRegistry",
    "OverlapBatcher",
    "ControlConfig",
    "ControlObservation",
    "ControlPlane",
    "ControlStats",
    "DegradeLevel",
    "EWMAPolicy",
    "FleetConfig",
    "FleetSpec",
    "HeteroStats",
    "KneeResult",
    "LoadPoint",
    "LoadTestConfig",
    "LoadTestReport",
    "LRUCache",
    "MultiTenantReport",
    "MultiTenantSimulator",
    "PIDPolicy",
    "Request",
    "RequestGenerator",
    "RequestRecord",
    "RequestTrace",
    "ServingReport",
    "ServingSimulator",
    "ShapeChooser",
    "ShapeScorer",
    "ShapeSpec",
    "ShardExecutor",
    "ShardTiming",
    "ShardingConfig",
    "ShardingStats",
    "SizeCappedBatcher",
    "SLOAwareBatcher",
    "StreamState",
    "SubgraphSample",
    "SubgraphSampler",
    "TenantBinding",
    "TenantConfig",
    "TenantRuntime",
    "ThresholdPolicy",
    "TimeoutBatcher",
    "TokenBucket",
    "TraceFormatError",
    "TraceWriter",
    "UpdateEvent",
    "UpdateStream",
    "WFQScheduler",
    "WorkloadConfig",
    "build_autoscale_policy",
    "build_batch_policy",
    "build_batcher",
    "bursty_arrival_times",
    "clear_probe_cache",
    "clear_shard_plan_cache",
    "clear_update_stream_cache",
    "default_degradation_ladder",
    "estimate_jaccard",
    "find_knee",
    "fleet_spec_for_mix",
    "generate_update_stream",
    "parse_update_mix",
    "format_trace_report",
    "format_trace_stats",
    "load_fleet_spec",
    "load_request_trace",
    "load_tenant_specs",
    "load_trace",
    "save_request_trace",
    "trace_report",
    "trace_stats",
    "validate_trace",
    "make_profile_fn",
    "make_signature_fn",
    "merge_tenant_streams",
    "percentile",
    "shape_cost",
    "shape_hw",
    "shape_table",
    "resolve_signature_hops",
    "poisson_arrival_times",
    "probe_targets",
    "ramp_arrival_times",
    "run_loadtest",
    "run_multi_tenant",
    "run_serving",
    "shard_plan_for",
    "split_tenant_stream",
    "trace_arrival_times",
]
