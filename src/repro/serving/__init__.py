"""Online inference serving on a fleet of HyGCN accelerators.

The serving subsystem turns the single-shot simulator into an online-serving
scenario: a stream of per-target-vertex requests (:mod:`repro.serving.workload`)
is expanded into k-hop subgraphs (:mod:`repro.serving.sampler`), fused into
batches (:mod:`repro.serving.batcher`), short-circuited by a result cache
(:mod:`repro.serving.cache`) and dispatched across simulated chips whose
service times drive a discrete-event clock (:mod:`repro.serving.fleet`);
latency/throughput/SLO metrics land in :mod:`repro.serving.stats`.
"""

from .batcher import (
    BATCHING_POLICIES,
    Batch,
    Batcher,
    SizeCappedBatcher,
    SLOAwareBatcher,
    TimeoutBatcher,
    build_batcher,
)
from .cache import CacheStats, LRUCache
from .fleet import DISPATCH_POLICIES, Chip, FleetConfig, ServingSimulator, run_serving
from .sampler import SubgraphSample, SubgraphSampler
from .stats import ChipStats, RequestRecord, ServingReport, percentile
from .workload import (
    ARRIVAL_PROCESSES,
    Request,
    RequestGenerator,
    WorkloadConfig,
    bursty_arrival_times,
    poisson_arrival_times,
    trace_arrival_times,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "BATCHING_POLICIES",
    "DISPATCH_POLICIES",
    "Batch",
    "Batcher",
    "CacheStats",
    "Chip",
    "ChipStats",
    "FleetConfig",
    "LRUCache",
    "Request",
    "RequestGenerator",
    "RequestRecord",
    "ServingReport",
    "ServingSimulator",
    "SizeCappedBatcher",
    "SLOAwareBatcher",
    "SubgraphSample",
    "SubgraphSampler",
    "TimeoutBatcher",
    "WorkloadConfig",
    "build_batcher",
    "bursty_arrival_times",
    "percentile",
    "poisson_arrival_times",
    "run_serving",
    "trace_arrival_times",
]
