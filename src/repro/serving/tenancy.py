"""Multi-tenant serving: several models/datasets share one accelerator fleet.

This module turns the single-stream fleet of :mod:`repro.serving.fleet` into
a shared deployment.  Each :class:`TenantConfig` binds a model from the model
zoo, a dataset/graph, an arrival process and a latency SLO; all tenants'
request streams are merged onto one simulated clock and compete for the same
chips.  Three mechanisms keep the sharing honest:

* **per-tenant batch formation** -- every tenant owns its own batcher
  (:mod:`repro.serving.batcher`) and result cache, so batches never mix
  graphs and one tenant's batching policy cannot delay another's flushes;
* **weighted fair queueing** -- formed batches are admitted into per-tenant
  dispatch queues drained by the deficit-round-robin
  :class:`~repro.serving.fleet.WFQScheduler`, with batch cost = estimated
  fused-batch service time priced on the batch's **deduped fused size**
  (a per-tenant EWMA of seconds per fused vertex, seeded by a probe
  batch, re-priced when continuous batching admits a late join), so chip
  *time* is shared in proportion to the configured weights and a tenant
  running an overlap-aware formation policy
  (:mod:`repro.serving.batching`) is billed for the union its batches
  actually execute;
* **isolation metrics** -- the run rolls up into a
  :class:`~repro.serving.stats.MultiTenantReport` with per-tenant latency
  percentiles and SLO-violation rates, measured contended service shares vs.
  weights, and cross-tenant p99 inflation against each tenant running alone
  on an identical fleet.

Key entry points: :func:`run_multi_tenant` (spec list -> report),
:func:`load_tenant_specs` (JSON file -> specs, used by
``python -m repro serve --tenants``) and :class:`MultiTenantSimulator` for
programmatic control.  Everything is deterministic under the fleet seed.

Arming a :class:`~repro.serving.control.ControlConfig` makes the shared
fleet elastic: the control plane autoscales the chip pool (warm-up on the
way up, drain-before-remove on the way down), polices each tenant with a
token bucket sized to its weight share, and sheds or degrades requests
whose queueing-delay estimate has already blown the tenant's SLO budget.

A :class:`~repro.serving.fleet.FleetConfig` carrying a
:class:`~repro.serving.hetero.FleetSpec` makes the shared fleet
*heterogeneous*: chips carry different HyGCN shapes, every tenant learns
its own per-(shape, profile-bucket) service rates (service cost is
model/dataset-specific, so scorers are never shared), and under
``dispatch="shape-aware"`` each WFQ-released batch is placed on the idle
chip whose shape serves that tenant's batch profile fastest.  Elastic
heterogeneous runs additionally choose *which shape* to add or retire
(:class:`~repro.serving.hetero.ShapeChooser`), and the report gains
per-shape utilization/service-share plus the mis-dispatch metric
(:class:`~repro.serving.stats.HeteroStats`).
"""

from __future__ import annotations

import heapq
import json
import logging

import numpy as np

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..graphs.datasets import DATASETS, load_dataset
from ..graphs.delta import DeltaGraph
from ..models.model_zoo import MODEL_NAMES, build_model
from .batcher import Batch
from .batching import ALL_BATCH_POLICIES, build_batch_policy, make_signature_fn
from .cache import LRUCache
from .control import ControlConfig, ControlObservation, ControlPlane, TenantBinding
from .fleet import (
    _ARRIVAL,
    _CHIP_READY,
    _COMPLETION,
    _CONTROL,
    _FLUSH,
    _METRICS,
    _UPDATE,
    _SLO_SERVICE_MULTIPLE,
    _TIMEOUT_SERVICE_MULTIPLE,
    Chip,
    FleetConfig,
    FleetScaler,
    WFQScheduler,
    fused_batch_service_time_s,
    probe_batch_service_time_s,
    probe_targets,
)
from .hetero import (
    BatchProfile,
    ShapeChooser,
    ShapeScorer,
    account_batch_service,
    make_profile_fn,
)
from .sampler import SubgraphSampler
from .sharding import ShardExecutor, shard_plan_for
from .stats import (
    BatchingStats,
    ConsistencyStats,
    HeteroStats,
    MultiTenantReport,
    RequestRecord,
    ServingReport,
    ShardingStats,
    percentile,
)
from .streaming import (
    StreamState,
    UpdateStream,
    generate_update_stream,
    parse_update_mix,
)
from .workload import (
    Request,
    RequestGenerator,
    WorkloadConfig,
    merge_tenant_streams,
    split_tenant_stream,
)

__all__ = [
    "TenantConfig",
    "TenantRuntime",
    "MultiTenantSimulator",
    "load_tenant_specs",
    "run_multi_tenant",
]

#: EWMA weight for the per-tenant batch-cost estimate the WFQ stage uses.
_COST_EWMA_ALPHA = 0.3

logger = logging.getLogger("repro.serving.tenancy")


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's binding of model, graph, traffic, SLO and fair share.

    ``weight`` is the tenant's WFQ share: under contention a tenant receives
    ``weight / sum(weights)`` of the fleet's chip-seconds.  ``rate_rps=None``
    spreads the tenant's requests over a window shared with the other
    calibrated tenants, sized so the fleet runs at the run's utilisation
    target (see :meth:`MultiTenantSimulator.calibrate_rates`); ``slo_s=None``
    and
    ``batch_timeout_s=None`` derive adaptive values from a probe batch, like
    the single-tenant fleet does.  ``seed=None`` derives a per-tenant seed
    from the fleet seed, keeping whole multi-tenant runs reproducible.

    ``batch_policy`` accepts the flush triggers (``size``/``timeout``/
    ``slo``) *and* the formation policies (``fifo``/``overlap``/
    ``continuous``, :mod:`repro.serving.batching`); each tenant forms its
    own batches, so tenants can mix policies.  The overlap tuning knobs
    (``overlap_k``, ``min_overlap``, ``pool_factor``, ``join_window_s``,
    ``staleness_s``) are fleet-level
    (:class:`~repro.serving.fleet.FleetConfig`) and apply to every tenant
    that opts into an overlap-aware policy.
    """

    name: str
    model: str = "GCN"
    dataset: str = "CR"
    weight: float = 1.0
    num_requests: int = 500
    rate_rps: Optional[float] = None
    arrival: str = "poisson"
    popularity_skew: float = 0.8
    burst_factor: float = 5.0
    on_fraction: float = 0.1
    peak_factor: float = 4.0
    ramp_fraction: float = 0.25
    peak_fraction: float = 0.2
    num_hops: int = 2
    fanout: int = 8
    batch_policy: str = "timeout"
    max_batch_size: int = 32
    batch_timeout_s: Optional[float] = None
    slo_s: Optional[float] = None
    cache_size: int = 4096
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        object.__setattr__(self, "model", str(self.model).upper())
        object.__setattr__(self, "dataset", str(self.dataset).upper())
        if self.model not in MODEL_NAMES:
            raise ValueError(f"model must be one of {MODEL_NAMES}, "
                             f"got {self.model!r}")
        if self.dataset not in DATASETS:
            raise ValueError(f"dataset must be one of {sorted(DATASETS)}, "
                             f"got {self.dataset!r}")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive when set")
        if self.arrival not in ("poisson", "bursty", "ramp"):
            raise ValueError(
                "per-tenant arrival must be 'poisson', 'bursty' or 'ramp' "
                "(to replay a captured multi-tenant run, pass the whole "
                "trace: `serve --tenants ... --replay trace.bin`)")
        if self.batch_policy not in ALL_BATCH_POLICIES:
            raise ValueError(f"batch_policy must be one of {ALL_BATCH_POLICIES}, "
                             f"got {self.batch_policy!r}")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.num_hops < 0:
            raise ValueError("num_hops must be >= 0")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.batch_timeout_s is not None and self.batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive when set")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive when set")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


def load_tenant_specs(source: Union[str, Sequence[Mapping], Mapping]
                      ) -> List[TenantConfig]:
    """Parse tenant specs from a JSON file path, a list of dicts, or a dict.

    The JSON shape is either a bare list of tenant objects or
    ``{"tenants": [...]}``; object keys mirror :class:`TenantConfig` fields
    (``slo_s`` in seconds).  Unknown keys are rejected so a typo in a spec
    fails loudly instead of silently falling back to a default.
    """
    if isinstance(source, str):
        with open(source) as handle:
            data = json.load(handle)
    else:
        data = source
    if isinstance(data, Mapping):
        if "tenants" not in data:
            raise ValueError("tenant spec object must have a 'tenants' list")
        data = data["tenants"]
    if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
        raise ValueError("tenant spec must be a list of tenant objects")
    known = {f.name for f in fields(TenantConfig)}
    specs: List[TenantConfig] = []
    for i, entry in enumerate(data):
        if not isinstance(entry, Mapping):
            raise ValueError(f"tenant #{i} is not an object")
        unknown = set(entry) - known
        if unknown:
            raise ValueError(f"tenant #{i} has unknown keys {sorted(unknown)}; "
                             f"valid keys are {sorted(known)}")
        try:
            specs.append(TenantConfig(**entry))
        except TypeError as exc:  # e.g. a string where a number belongs
            raise ValueError(f"tenant #{i} is malformed: {exc}") from exc
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    if not specs:
        raise ValueError("tenant spec must name at least one tenant")
    return specs


class TenantRuntime:
    """Everything one tenant owns at run time: graph, model, sampler, batcher,
    result cache, probe-calibrated time scales and fairness accounting.

    The WFQ batch-cost model prices a batch by its **deduped fused size**
    (:meth:`~repro.serving.sampler.SubgraphSampler.fused_size`) times an
    EWMA of observed service seconds per fused vertex, seeded from the
    probe batch -- so a batch of heavily-overlapping requests is billed
    for the union it actually executes, and an overlap-aware tenant cannot
    be overcharged (nor cheat) relative to a FIFO tenant.
    """

    def __init__(self, config: TenantConfig, fleet: FleetConfig, index: int,
                 updates: Optional[UpdateStream] = None):
        self.config = config
        self.name = config.name
        self.seed = config.seed if config.seed is not None \
            else fleet.seed + 101 * (index + 1)
        self.graph = load_dataset(config.dataset, seed=self.seed)
        if updates is not None:
            # mutating run: every tenant serves its own delta overlay, so
            # streaming inserts never touch the shared memoised base graph
            self.graph = DeltaGraph(self.graph,
                                    compact_every=updates.compact_every)
        self.model = build_model(config.model,
                                 input_length=self.graph.feature_length)
        self.sampler = SubgraphSampler(self.graph, num_hops=config.num_hops,
                                       fanout=config.fanout, seed=self.seed)
        self.result_cache = LRUCache(config.cache_size)
        self._fleet_shapes = fleet.distinct_shapes()
        self.probe_service_s = self._probe(fleet)
        self.slo_s = config.slo_s if config.slo_s is not None \
            else _SLO_SERVICE_MULTIPLE * self.probe_service_s
        timeout_s = config.batch_timeout_s if config.batch_timeout_s is not None \
            else _TIMEOUT_SERVICE_MULTIPLE * self.probe_service_s
        self.overlap_aware = config.batch_policy in ("overlap", "continuous")
        self.batcher = build_batch_policy(
            config.batch_policy, max_batch_size=config.max_batch_size,
            timeout_s=timeout_s, slo_s=self.slo_s,
            signature_fn=make_signature_fn(
                self.sampler, config.num_hops, config.fanout,
                overlap_k=fleet.overlap_k) if self.overlap_aware else None,
            min_overlap=fleet.min_overlap,
            pool_factor=fleet.pool_factor,
            join_window_s=fleet.join_window_s if fleet.join_window_s is not None
            else timeout_s,
            staleness_s=fleet.staleness_s if fleet.staleness_s is not None
            else 0.5 * self.slo_s,
            tenant=self.name)
        self.batching = BatchingStats(policy=config.batch_policy)
        self.overlap_ewma = 0.0
        self.probe_batch_size = min(config.max_batch_size,
                                    self.graph.num_vertices)
        # WFQ batch-cost model: EWMA of service seconds per *fused* vertex,
        # seeded by the probe batch's measured fused size.
        shape = (config.num_hops, config.fanout)
        probe_fused, probe_naive = self.sampler.fused_size(
            (int(t),) + shape
            for t in probe_targets(self.graph.num_vertices,
                                   config.max_batch_size, self.seed))
        self.cost_per_vertex_s = self.probe_service_s / max(probe_fused, 1)
        # Shape-aware serving (repro.serving.hetero): this tenant's own
        # per-(shape, bucket) rate model, seeded from its per-shape probes
        # -- service rates are model/dataset-specific, so scorers are never
        # shared across tenants.
        self.shape_scorer: Optional[ShapeScorer] = None
        self.profile_fn = None
        if fleet.heterogeneous or fleet.dispatch == "shape-aware":
            self.profile_fn = make_profile_fn(self.sampler,
                                              self.graph.feature_length)
            self.shape_scorer = ShapeScorer()
            bucket = BatchProfile(
                est_fused_vertices=probe_fused,
                est_naive_vertices=probe_naive,
                batch_size=min(config.max_batch_size,
                               self.graph.num_vertices),
                feature_length=self.graph.feature_length).bucket
            for shape_name, hw in self._fleet_shapes.items():
                self.shape_scorer.seed(
                    shape_name, bucket,
                    self._probe_for_shape(hw) / max(probe_fused, 1))
        # Admission-control cost model: EWMA of service seconds per request
        # (duplicates included -- backlog accounting is per request).
        self.cost_per_request_s = self.probe_service_s / self.probe_batch_size
        # Sharded execution (repro.serving.sharding): bound by the
        # simulator when the fleet arms a ShardingConfig.
        self.shard_executor: Optional[ShardExecutor] = None
        # Accounting
        self.busy_s = 0.0
        self.contended_busy_s = 0.0
        self.arrivals_left = 0
        self.queued_batches = 0  # scheduler-backlog view, kept by the sim
        self.scheduled_flush: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _probe_for_shape(self, hw) -> float:
        """Probe-batch service time on one chip shape (memoised globally)."""
        return probe_batch_service_time_s(
            hw, self.sampler, self.model, self.config.dataset,
            self.config.max_batch_size, self.graph.num_vertices, self.seed)

    def _probe(self, fleet: FleetConfig) -> float:
        """Service time of one full batch of distinct uniform targets.

        On a heterogeneous fleet this is the **slowest** shape's probe time
        (adaptive SLOs/timeouts must hold wherever a batch lands); a
        homogeneous fleet reduces to the single probe it always ran.
        """
        return max(self._probe_for_shape(hw)
                   for hw in self._fleet_shapes.values())

    def estimate_cost_s(self, batch: Batch) -> float:
        """Estimated fused service time: EWMA seconds/vertex x fused size.

        The fused size is the deduped union of the batch members' sampled
        neighbourhoods (memoised lookups, no graph built), so overlapping
        batches are priced at the work they will actually do.
        """
        fused, _ = self.sampler.fused_size(
            (r.target_vertex, r.degrade_hops, r.degrade_fanout)
            for r in batch.requests)
        return self.cost_per_vertex_s * max(fused, 1)

    def observe_cost(self, batch: Batch, service_s: float) -> None:
        """Fold an observed batch service time back into the cost models.

        ``batch.fused_vertices`` was stamped by the service model just
        before this call, so the per-vertex EWMA tracks the measured fused
        size, not a re-estimate.
        """
        a = _COST_EWMA_ALPHA
        if batch.fused_vertices > 0:
            observed = service_s / batch.fused_vertices
            self.cost_per_vertex_s = a * observed \
                + (1 - a) * self.cost_per_vertex_s
        self.overlap_ewma = a * batch.overlap_ratio \
            + (1 - a) * self.overlap_ewma
        self.cost_per_request_s = a * (service_s / batch.size) \
            + (1 - a) * self.cost_per_request_s

    @property
    def demanding(self) -> bool:
        """True while the tenant still has work that wants chip time."""
        return (self.arrivals_left > 0 or self.batcher.pending_count > 0
                or self.queued_batches > 0)


class MultiTenantSimulator:
    """Discrete-event simulation of tenants sharing one chip fleet via WFQ.

    The event loop mirrors :class:`~repro.serving.fleet.ServingSimulator` --
    arrivals, per-tenant flush deadlines, chip completions -- but inserts the
    deficit-round-robin :class:`~repro.serving.fleet.WFQScheduler` between
    batch formation and the chips: chips hold no private queues, and every
    time a chip frees up it pulls the next batch in fair-share order.
    """

    def __init__(self, tenants: Sequence[TenantConfig],
                 fleet: Optional[FleetConfig] = None,
                 control: Optional[ControlConfig] = None,
                 observe=None, capture=None, updates=None):
        #: Observability hub (:class:`repro.serving.observe.Instrumentation`)
        #: or ``None``; hooks are guarded so an uninstrumented run executes
        #: no observability code.
        self.observe = observe
        #: Request-trace capture hub (:class:`repro.serving.trace.TraceWriter`)
        #: or ``None``; records every offered request (tenant tag included)
        #: at its arrival event, pre-admission, like the single-tenant loop.
        self.capture = capture
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self.fleet = fleet or FleetConfig()
        self.control_config = control if control is not None and control.active \
            else None
        #: Streaming update stream (:class:`repro.serving.streaming.
        #: UpdateStream`) or ``None``; arming it wraps every tenant's graph
        #: in a delta overlay and interleaves its events with the traffic.
        self.updates = updates
        self.runtimes: Dict[str, TenantRuntime] = {
            t.name: TenantRuntime(t, self.fleet, i, updates=updates)
            for i, t in enumerate(tenants)}
        self.tenant_names = names
        initial_chips = self.fleet.num_chips
        if self.control_config is not None \
                and self.control_config.autoscale is not None:
            # only the autoscaler's band constrains the fleet; admission/
            # degrade-only control leaves the configured size untouched
            initial_chips = max(self.control_config.min_chips,
                                min(self.control_config.max_chips,
                                    initial_chips))
        roster = self.fleet.chip_roster()
        # a min-chips band wider than the spec cycles the roster
        self.chips = [Chip(i, roster[i % len(roster)][1],
                           self.fleet.feature_cache_size,
                           shape=roster[i % len(roster)][0])
                      for i in range(initial_chips)]
        self._next_chip_id = initial_chips
        self._shapes = self.fleet.distinct_shapes()
        self._track_shapes = self.fleet.heterogeneous \
            or self.fleet.dispatch == "shape-aware"
        self._shape_aware = self.fleet.dispatch == "shape-aware"
        #: Fleet-wide sharded-execution stats (None on an unsharded fleet);
        #: per-tenant executors live on the runtimes and all fold into this
        #: one object, because the chip group is shared fleet state.
        self.sharding_stats: Optional[ShardingStats] = None
        if self.fleet.sharding is not None:
            if self.control_config is not None:
                raise ValueError(
                    "sharded execution cannot be combined with the elastic "
                    "control plane (a chip group cannot scale mid-run)")
            sharding = self.fleet.sharding
            # the group leader (chip 0) is the only schedulable chip; the
            # members execute sub-batches off the leader's clock
            for chip in self.chips[1:]:
                chip.state = "member"
            self.sharding_stats = ShardingStats(
                num_shards=sharding.num_shards,
                partitioner=sharding.partitioner)
            # one halo-cache list for the whole fleet, keyed (tenant,
            # vertex) like the feature caches; capacity is sized by the
            # largest tenant's feature vector so no tenant over-fits it
            feature_bytes = {
                name: rt.graph.feature_length
                * rt.graph.features.dtype.itemsize
                for name, rt in self.runtimes.items()}
            capacity = int(sharding.halo_cache_mb * (1 << 20)
                           / max(max(feature_bytes.values()), 1))
            halo_caches = [LRUCache(capacity)
                           for _ in range(sharding.num_shards)]
            for name, rt in self.runtimes.items():
                rt.shard_executor = ShardExecutor(
                    shard_plan_for(rt.graph, sharding), self.chips,
                    rt.sampler, rt.model, rt.config.dataset, sharding,
                    feature_bytes=feature_bytes[name],
                    stats=self.sharding_stats, halo_caches=halo_caches,
                    key_fn=lambda v, name=name: (name, v))
        #: Per-tenant update applier / consistency tracker (mutating runs);
        #: every tenant serves its own graph, so each needs its own
        #: StreamState, but they all fold into one shared ConsistencyStats.
        self.streams: Dict[str, StreamState] = {}
        self.consistency: Optional[ConsistencyStats] = None
        if updates is not None:
            self.consistency = ConsistencyStats(
                policy=updates.policy,
                budget_versions=updates.staleness_budget_versions)
            for name, rt in self.runtimes.items():
                self.streams[name] = StreamState(
                    rt.graph, rt.sampler, updates, self.consistency,
                    result_cache=rt.result_cache, chips=self.chips,
                    feature_key=lambda v, name=name: (name, v),
                    shard_executor=rt.shard_executor, observe=observe)
        quantum_s = 0.5 * min(rt.probe_service_s
                              for rt in self.runtimes.values())
        self.scheduler = WFQScheduler(
            {t.name: t.weight for t in tenants}, quantum_s=max(quantum_s, 1e-12))
        #: The control plane of the most recent :meth:`run` (None when fixed).
        self.control: Optional[ControlPlane] = None

    # ------------------------------------------------------------------ #
    # Traffic
    # ------------------------------------------------------------------ #
    def calibrate_rates(self, utilization_target: float = 0.7
                        ) -> Dict[str, float]:
        """Resolve every tenant's arrival rate (explicit or calibrated).

        Calibrated tenants (``rate_rps=None``) all spread their requests over
        one shared arrival window, sized so the fleet's aggregate offered
        chip-time (each calibrated tenant's request count times its
        probe-measured per-request cost, on top of whatever load the
        explicit-rate tenants already offer) equals ``utilization_target`` of
        fleet capacity.  Sharing one window keeps the calibrated tenants
        contending for the whole run -- weights decide who wins that
        contention, not who arrives when.  Raises when the explicit-rate
        tenants alone already offer the whole target (the calibrated tenants
        would have no budget left).
        """
        if not 0 < utilization_target:
            raise ValueError("utilization_target must be positive")

        def cost_per_request_s(rt: TenantRuntime) -> float:
            return rt.probe_service_s / rt.probe_batch_size

        rates: Dict[str, float] = {
            name: rt.config.rate_rps for name, rt in self.runtimes.items()
            if rt.config.rate_rps is not None}
        calibrated = [rt for rt in self.runtimes.values()
                      if rt.config.rate_rps is None]
        if not calibrated:
            return rates
        # chip-seconds per second the explicit-rate tenants already claim
        explicit_load = sum(rates[rt.name] * cost_per_request_s(rt)
                            for rt in self.runtimes.values()
                            if rt.config.rate_rps is not None)
        budget = utilization_target * self.fleet.num_chips - explicit_load
        if budget <= 0:
            raise ValueError(
                f"explicit-rate tenants already offer "
                f"{explicit_load / self.fleet.num_chips:.2f}x fleet capacity, "
                f">= the utilization target {utilization_target:g}; raise the "
                f"target or give every tenant an explicit rate_rps")
        demand_s = sum(rt.config.num_requests * cost_per_request_s(rt)
                       for rt in calibrated)
        window_s = demand_s / budget
        for rt in calibrated:
            rates[rt.name] = max(rt.config.num_requests, 1) \
                / max(window_s, 1e-12)
        return rates

    def tenant_streams(self, rates: Mapping[str, float]
                       ) -> Dict[str, List[Request]]:
        """Generate each tenant's (untagged) request stream at its rate."""
        streams: Dict[str, List[Request]] = {}
        for name, rt in self.runtimes.items():
            cfg = rt.config
            workload = WorkloadConfig(
                num_requests=cfg.num_requests, rate_rps=rates[name],
                arrival=cfg.arrival, popularity_skew=cfg.popularity_skew,
                burst_factor=cfg.burst_factor, on_fraction=cfg.on_fraction,
                peak_factor=cfg.peak_factor, ramp_fraction=cfg.ramp_fraction,
                peak_fraction=cfg.peak_fraction, seed=rt.seed)
            streams[name] = RequestGenerator(rt.graph.num_vertices,
                                             workload).generate()
        return streams

    # ------------------------------------------------------------------ #
    # Service-time model (per tenant, shared chips)
    # ------------------------------------------------------------------ #
    def _service_time_s(self, chip: Chip, rt: TenantRuntime,
                        batch: Batch, now: float = 0.0) -> float:
        """Fused-batch execution time on ``chip`` for ``rt``'s model/graph.

        The shared single-tenant model, except the chip's feature cache is
        keyed by ``(tenant, vertex)``: vertex ids from different tenants'
        graphs alias numerically but never share features.  On a sharded
        fleet the tenant's executor runs the batch across the chip group
        instead (``chip`` is always the group leader there); a one-shard
        plan keeps this path verbatim so its report stays bit-for-bit
        identical to an unsharded run.
        """
        if rt.shard_executor is not None \
                and rt.shard_executor.plan.num_shards > 1:
            return rt.shard_executor.service_time_s(
                batch, reuse_discount=self.fleet.reuse_discount, now=now)
        return fused_batch_service_time_s(
            chip, rt.sampler, rt.model, batch,
            dataset_name=rt.config.dataset,
            reuse_discount=self.fleet.reuse_discount,
            cache_key=lambda v: (rt.name, v),
            stream=self.streams.get(rt.name), now=now)

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[Request],
            rates: Optional[Mapping[str, float]] = None) -> MultiTenantReport:
        """Serve a merged, tenant-tagged stream and return the shared report."""
        fleet = self.fleet
        rates = dict(rates or {})
        records: List[RequestRecord] = []
        report = MultiTenantReport(
            num_chips=len(self.chips),
            tenants=list(self.tenant_names),
            weights={n: self.runtimes[n].config.weight
                     for n in self.tenant_names},
            reports={},
        )
        observe = self.observe
        for rt in self.runtimes.values():
            rt.arrivals_left = 0
            if observe is not None:
                rt.batcher.instrumentation = observe
        for request in requests:
            if request.tenant not in self.runtimes:
                raise ValueError(f"request tagged with unknown tenant "
                                 f"{request.tenant!r}")
            self.runtimes[request.tenant].arrivals_left += 1

        events: List[Tuple[float, int, int, object]] = []
        seq = 0
        for request in requests:
            heapq.heappush(events, (request.arrival_time_s, seq, _ARRIVAL,
                                    request))
            seq += 1
        if self.updates is not None:
            # updates enter the same heap; requests pushed first, so a
            # request at the identical timestamp wins the tie (a query
            # races an update: the query is served, then the graph moves)
            for event in self.updates.events:
                if event.tenant not in self.runtimes:
                    raise ValueError(f"update tagged with unknown tenant "
                                     f"{event.tenant!r}")
                heapq.heappush(events, (event.arrival_time_s, seq, _UPDATE,
                                        event))
                seq += 1

        admit_meta: Dict[Tuple[str, int], float] = {}   # batch -> admit time
        start_meta: Dict[Tuple[str, int], float] = {}   # batch -> start time
        in_flight = 0
        t0 = requests[0].arrival_time_s if requests else 0.0
        last_t = t0
        in_flight_area = 0.0
        chip_batch: Dict[int, Tuple[TenantRuntime, Batch]] = {}
        hetero_stats: Optional[HeteroStats] = None
        if self._track_shapes:
            hetero_stats = HeteroStats(
                dispatch_policy="shape-aware" if self._shape_aware
                else "wfq-first-idle")

        # ---------------- control plane (elastic runs only) --------------- #
        control: Optional[ControlPlane] = None
        scaler: Optional[FleetScaler] = None
        backlog_cost_s = 0.0
        request_cost_s: Dict[int, float] = {}
        arrivals_interval = completions_interval = 0
        violations_interval = shed_interval = 0
        busy_snapshot_s = 0.0
        # fleet-wide per-request cost EWMA for the sizing policies
        fleet_cost_per_request_s = float(np.mean(
            [rt.cost_per_request_s for rt in self.runtimes.values()]))
        for chip in self.chips:
            chip.added_s = t0
            chip.ready_s = t0
        if self.control_config is not None and requests:
            control = ControlPlane(self.control_config)
            if observe is not None:
                control.instrumentation = observe
            min_probe_s = min(rt.probe_service_s
                              for rt in self.runtimes.values())
            control.bind(
                [TenantBinding(
                    name=rt.name, slo_s=rt.slo_s,
                    num_hops=rt.config.num_hops, fanout=rt.config.fanout,
                    weight=rt.config.weight,
                    capacity_per_chip_rps=rt.probe_batch_size
                    / max(rt.probe_service_s, 1e-12))
                 for rt in self.runtimes.values()],
                initial_chips=len(self.chips),
                probe_service_s=min_probe_s,
                capacity_per_chip_rps=1.0
                / max(fleet_cost_per_request_s, 1e-12))
            self.control = control
            heapq.heappush(events, (t0 + control.control_interval_s, seq,
                                    _CONTROL, None))
            seq += 1

            def new_chip(shape: Optional[str] = None) -> Chip:
                if shape is None:
                    shape, hw = fleet.base_shape, fleet.hw
                else:
                    hw = self._shapes[shape]
                chip = Chip(self._next_chip_id, hw,
                            fleet.feature_cache_size, shape=shape)
                self._next_chip_id += 1
                return chip

            def schedule_ready(chip: Chip) -> None:
                nonlocal seq
                heapq.heappush(events, (chip.ready_s, seq, _CHIP_READY, chip))
                seq += 1

            def drain_victim(actives: List[Chip]) -> Chip:
                # chips hold no private queues here (the WFQ stage does),
                # so prefer an idle chip, newest first
                idle = [c for c in actives if not c.busy]
                return max(idle or actives, key=lambda c: c.chip_id)

            chooser: Optional[ShapeChooser] = None
            if len(self._shapes) > 1:
                chooser = ShapeChooser(
                    self.control_config.scale_shape, self._shapes,
                    scorers=[rt.shape_scorer
                             for rt in self.runtimes.values()
                             if rt.shape_scorer is not None])
            scaler = FleetScaler(
                self.chips, control, new_chip, schedule_ready,
                # heterogeneous scale-downs drain the shape the demand
                # needs least; homogeneous ones an idle chip, newest first
                chooser.retire_victim if chooser is not None
                else drain_victim,
                shape_chooser=chooser)

        # ---------------- metrics scraping (instrumented runs) ------------ #
        metrics_interval_s = 0.0
        if observe is not None and observe.wants_metrics and requests:
            from .observe import METRICS_PROBE_MULTIPLE
            metrics_interval_s = observe.metrics_interval_s \
                if observe.metrics_interval_s is not None \
                else METRICS_PROBE_MULTIPLE * min(
                    rt.probe_service_s for rt in self.runtimes.values())
            heapq.heappush(events, (t0 + metrics_interval_s, seq,
                                    _METRICS, None))
            seq += 1

        def metrics_snapshot(now: float) -> Dict:
            gauges: Dict = {
                "repro_queue_depth": sum(
                    rt.batcher.pending_count
                    for rt in self.runtimes.values()),
                "repro_in_flight_requests": in_flight,
                "repro_in_flight_batches": self.scheduler.pending_batches
                + sum(1 for c in self.chips if c.busy),
            }
            for name, rt in self.runtimes.items():
                gauges[("repro_tenant_queue_depth",
                        (("tenant", name),))] = rt.batcher.pending_count
                gauges[("repro_overlap_ratio_ewma",
                        (("tenant", name),))] = rt.overlap_ewma
            if self.sharding_stats is not None:
                stats = self.sharding_stats
                gauges["repro_halo_hit_rate"] = stats.halo_hit_rate
                gauges["repro_halo_bytes_moved"] = stats.halo_bytes_moved
                gauges["repro_shard_load_imbalance"] = stats.load_imbalance
            elapsed = now - t0
            if elapsed > 0:
                for shape in self._shapes:
                    members = [c for c in self.chips if c.shape == shape]
                    busy = sum(c.stats.busy_s for c in members)
                    gauges[("repro_busy_fraction", (("shape", shape),))] = \
                        busy / (elapsed * len(members)) if members else 0.0
            return gauges

        def schedule_flush(rt: TenantRuntime, now: float) -> None:
            nonlocal seq
            deadline = rt.batcher.next_deadline(now)
            if deadline is not None and deadline != rt.scheduled_flush:
                heapq.heappush(events, (max(deadline, now), seq, _FLUSH,
                                        rt.name))
                seq += 1
                rt.scheduled_flush = deadline

        def admit(rt: TenantRuntime, batch: Batch, now: float) -> None:
            """Per-tenant admission: the batch joins the WFQ dispatch queue."""
            self.scheduler.enqueue(rt.name, batch, rt.estimate_cost_s(batch))
            rt.queued_batches += 1
            admit_meta[(rt.name, batch.batch_id)] = now
            report.max_backlog_batches = max(report.max_backlog_batches,
                                             self.scheduler.pending_batches)

        def pick_chip(idle: List[Chip], rt: TenantRuntime,
                      batch: Batch) -> Chip:
            """Which idle chip serves this batch.

            Shape-oblivious dispatch takes the first idle chip in chip-id
            order (the historical behaviour -- with zero outstanding work
            everywhere this *is* least-loaded).  ``shape-aware`` scores the
            idle chips with the tenant's learned per-(shape, bucket) rates
            and falls back to first-idle while any candidate shape is cold.
            """
            if not self._shape_aware or rt.shape_scorer is None:
                return idle[0]
            if batch.profile is None:
                batch.profile = rt.profile_fn(batch)
            bucket = batch.profile.bucket
            rt.shape_scorer.note_demand(bucket)
            shapes = sorted({c.shape for c in idle})
            if not rt.shape_scorer.warm(shapes, bucket):
                hetero_stats.fallback_batches += 1
                return idle[0]
            hetero_stats.scored_batches += 1
            return min(idle, key=lambda c: (
                rt.shape_scorer.rate(c.shape, bucket)
                * batch.profile.est_fused_vertices, c.chip_id))

        def pump(now: float) -> None:
            """Release WFQ batches onto free chips until one side runs dry."""
            nonlocal seq, fleet_cost_per_request_s
            while self.scheduler.pending_batches:
                idle = [c for c in self.chips
                        if c.schedulable and not c.busy]
                if not idle:
                    return
                contended = all(rt.demanding for rt in self.runtimes.values())
                released = self.scheduler.next_batch()
                if released is None:  # pragma: no cover - guarded above
                    return
                name, batch, _cost = released
                rt = self.runtimes[name]
                rt.queued_batches -= 1
                # seal before costing: no joins once a chip owns the batch,
                # and the service time must cover its final membership
                rt.batcher.on_service_start(batch)
                chip = pick_chip(idle, rt, batch)
                chip.current = batch
                chip_batch[chip.chip_id] = (rt, batch)
                start_meta[(name, batch.batch_id)] = now
                if self.updates is not None:
                    # differential consistency probe at the seal point --
                    # observation only, before the costed service time
                    self.streams[name].check_batch(batch, now)
                service_s = self._service_time_s(chip, rt, batch, now=now)
                if hetero_stats is not None:
                    account_batch_service(
                        rt.shape_scorer, hetero_stats, batch, rt.profile_fn,
                        chip.shape, service_s,
                        {c.shape for c in self.chips
                         if c.state == "active"},
                        # shape-aware picks already counted demand in
                        # pick_chip; oblivious pulls count it here
                        note_demand=not self._shape_aware)
                rt.observe_cost(batch, service_s)
                rt.batching.observe_batch(batch)
                rt.batcher.observe_service_time(service_s)
                a = _COST_EWMA_ALPHA
                fleet_cost_per_request_s = a * (service_s / batch.size) \
                    + (1 - a) * fleet_cost_per_request_s
                chip.stats.busy_s += service_s
                rt.busy_s += service_s
                if contended:
                    rt.contended_busy_s += service_s
                heapq.heappush(events, (now + service_s, seq, _COMPLETION,
                                        chip))
                seq += 1
                # a fresh service observation may tighten an SLO-aware
                # flush deadline for this tenant's pending requests
                schedule_flush(rt, now)

        def complete(chip: Chip, now: float) -> None:
            nonlocal in_flight, backlog_cost_s
            nonlocal completions_interval, violations_interval
            rt, batch = chip_batch.pop(chip.chip_id)
            chip.current = None
            chip.stats.batches_served += 1
            chip.stats.requests_served += batch.size
            admitted = admit_meta.pop((rt.name, batch.batch_id))
            started = start_meta.pop((rt.name, batch.batch_id))
            for request in batch.requests:
                records.append(RequestRecord(
                    request_id=request.request_id,
                    target_vertex=request.target_vertex,
                    arrival_time_s=request.arrival_time_s,
                    # a late-joined request entered after the batch was
                    # admitted: its batching wait ends at its own arrival
                    dispatch_time_s=max(admitted, request.arrival_time_s),
                    service_start_s=started,
                    completion_time_s=now,
                    cache_hit=False,
                    chip_id=chip.chip_id,
                    batch_id=batch.batch_id,
                    tenant=rt.name,
                    degrade_level=request.degrade_level,
                ))
                # degraded answers are lower fidelity: never cache them
                if request.degrade_level == 0:
                    rt.result_cache.put(request.target_vertex, now)
                    if self.updates is not None:
                        self.streams[rt.name].register_result(
                            request.target_vertex, now)
                in_flight -= 1
                completions_interval += 1
                if now - request.arrival_time_s > rt.slo_s:
                    violations_interval += 1
                backlog_cost_s -= request_cost_s.pop(request.request_id, 0.0)
            if observe is not None:
                observe.on_batch_complete(now, chip, batch, admitted,
                                          started, tenant=rt.name)
                observe.on_shard_batch_complete(now, batch, started)
            if chip.state == "draining":
                scaler.retire(chip, now)
            pump(now)

        def control_tick(now: float) -> None:
            nonlocal seq, busy_snapshot_s
            nonlocal arrivals_interval, completions_interval
            nonlocal violations_interval, shed_interval
            active, warming, draining = scaler.counts()
            busy_total_s = sum(c.stats.busy_s for c in self.chips)
            interval_s = control.control_interval_s
            utilization = (busy_total_s - busy_snapshot_s) \
                / (interval_s * max(1, active))
            # the tightest tenant SLO anchors the fleet-level delay signal
            min_slo_s = min(rt.slo_s for rt in self.runtimes.values())
            obs = ControlObservation(
                now_s=now,
                interval_s=interval_s,
                active_chips=active,
                warming_chips=warming,
                draining_chips=draining,
                queue_depth=in_flight,
                backlog_cost_s=backlog_cost_s,
                arrivals=arrivals_interval,
                completions=completions_interval,
                violations=violations_interval,
                shed=shed_interval,
                utilization=min(1.0, utilization),
                cost_per_request_s=fleet_cost_per_request_s,
                slo_s=min_slo_s,
            )
            target = control.tick(obs)
            scaler.scale_to(target, now)
            busy_snapshot_s = busy_total_s
            arrivals_interval = completions_interval = 0
            violations_interval = shed_interval = 0
            if in_flight > 0 or any(rt.arrivals_left > 0
                                    for rt in self.runtimes.values()):
                heapq.heappush(events, (now + interval_s, seq, _CONTROL, None))
                seq += 1

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == _METRICS:
                # handled before the in-flight integral update so the
                # float accounting (and hence the report) stays bit-for-bit
                # identical to an uninstrumented run
                observe.scrape(now, metrics_snapshot(now))
                if in_flight > 0 or any(rt.arrivals_left > 0
                                        for rt in self.runtimes.values()):
                    heapq.heappush(events, (now + metrics_interval_s, seq,
                                            _METRICS, None))
                    seq += 1
                continue
            in_flight_area += in_flight * (now - last_t)
            last_t = now
            if kind == _ARRIVAL:
                request: Request = payload
                rt = self.runtimes[request.tenant]
                rt.arrivals_left -= 1
                arrivals_interval += 1
                if self.capture is not None:
                    self.capture.record(request)
                if rt.result_cache.get(request.target_vertex) is not None:
                    if self.updates is not None:
                        self.streams[rt.name].on_result_hit(
                            request.target_vertex, now)
                    done = now + fleet.cache_hit_latency_s
                    records.append(RequestRecord(
                        request_id=request.request_id,
                        target_vertex=request.target_vertex,
                        arrival_time_s=request.arrival_time_s,
                        dispatch_time_s=done,
                        service_start_s=done,
                        completion_time_s=done,
                        cache_hit=True,
                        tenant=rt.name,
                    ))
                    if observe is not None:
                        observe.on_cache_hit(now, request, done,
                                             tenant=rt.name)
                else:
                    admitted = True
                    if control is not None:
                        active_count = sum(1 for c in self.chips
                                           if c.schedulable)
                        est_delay_s = backlog_cost_s / max(1, active_count)
                        decision = control.admit(
                            rt.name, now, est_delay_s, rt.cost_per_request_s,
                            overlap_ratio=rt.overlap_ewma if rt.overlap_aware
                            else 0.0)
                        admitted = decision.admitted
                        if not admitted:
                            shed_interval += 1
                        elif decision.level > 0:
                            request = replace(
                                request,
                                degrade_level=decision.level,
                                degrade_hops=decision.num_hops,
                                degrade_fanout=decision.fanout)
                        if admitted:
                            cost = rt.cost_per_request_s * decision.cost_scale
                            request_cost_s[request.request_id] = cost
                            backlog_cost_s += cost
                    if admitted:
                        in_flight += 1
                        # continuous batching: try joining a formed batch
                        # still waiting in the WFQ queue; reprice it so the
                        # DRR deficit bills the post-join fused size
                        joined = rt.batcher.try_join(request, now)
                        if joined is not None:
                            self.scheduler.reprice(rt.name, joined.batch_id,
                                                   rt.estimate_cost_s(joined))
                        else:
                            batch = rt.batcher.add(request, now)
                            if batch is not None:
                                admit(rt, batch, now)
                                pump(now)
                            # re-arm in every case: formation policies can
                            # emit a subset and leave a deadline pending
                            schedule_flush(rt, now)
                if rt.arrivals_left == 0 and rt.batcher.pending_count \
                        and rt.batcher.next_deadline(now) is None:
                    # end of this tenant's stream under a pure size cap
                    for leftover in rt.batcher.drain(now):
                        admit(rt, leftover, now)
                    pump(now)
            elif kind == _FLUSH:
                rt = self.runtimes[payload]
                rt.scheduled_flush = None
                batch = rt.batcher.flush_due(now)
                if batch is not None:
                    admit(rt, batch, now)
                    pump(now)
                schedule_flush(rt, now)
            elif kind == _COMPLETION:
                complete(payload, now)
            elif kind == _UPDATE:
                # recorded before application, mirroring request capture at
                # arrival, so a captured trace replays the offered stream
                if self.capture is not None:
                    self.capture.record_update(payload)
                self.streams[payload.tenant].apply(now, payload)
            elif kind == _CONTROL:
                control_tick(now)
            else:  # _CHIP_READY
                if scaler.mark_ready(payload, now):
                    pump(now)

        # ------------------------------------------------------------------
        # Roll the tagged records up into per-tenant report slices
        # ------------------------------------------------------------------
        if observe is not None and observe.wants_metrics and requests:
            # closing scrape (outside the loop, so it cannot perturb the
            # integral): even a run shorter than the interval gets >= 1 row
            observe.scrape(last_t, metrics_snapshot(last_t))
        span = (last_t - t0) if requests else 0.0
        report.avg_in_flight = in_flight_area / span if span > 0 else 0.0
        logger.info("served %d requests for %d tenants on %d chips in "
                    "%.6f s simulated", len(requests),
                    len(self.tenant_names), len(self.chips), span)
        report.chips = [chip.stats for chip in self.chips]
        if hetero_stats is not None:
            for chip in self.chips:
                hetero_stats.shape_counts[chip.shape] = \
                    hetero_stats.shape_counts.get(chip.shape, 0) + 1
            for name in self.tenant_names:
                scorer = self.runtimes[name].shape_scorer
                if scorer is not None:
                    hetero_stats.rates.update(
                        {f"{name}/{key}": rate
                         for key, rate in scorer.snapshot().items()})
            report.hetero = hetero_stats
        if control is not None:
            report.control = control.finalize(last_t, self.chips)
        if self.sharding_stats is not None:
            latencies = [r.latency_s for r in records]
            self.sharding_stats.p50_s = percentile(latencies, 50)
            self.sharding_stats.p95_s = percentile(latencies, 95)
            self.sharding_stats.p99_s = percentile(latencies, 99)
            report.sharding = self.sharding_stats
        if self.updates is not None:
            for state in self.streams.values():
                state.finalize()
            self.consistency.p99_s = percentile(
                [r.latency_s for r in records], 99)
            report.consistency = self.consistency
        for name in self.tenant_names:
            rt = self.runtimes[name]
            slice_report = ServingReport(
                model_name=rt.config.model,
                dataset_name=rt.config.dataset,
                num_chips=fleet.num_chips,
                batch_policy=rt.config.batch_policy,
                dispatch_policy="wfq-drr",
                rate_rps=rates.get(name, 0.0),
                slo_s=rt.slo_s,
            )
            slice_report.records = [r for r in records if r.tenant == name]
            slice_report.cache = rt.result_cache.stats
            rt.batching.late_join_rejects = rt.batcher.late_join_rejects
            slice_report.batching = rt.batching
            report.reports[name] = slice_report
            report.busy_s[name] = rt.busy_s
            report.contended_busy_s[name] = rt.contended_busy_s
        return report


def run_multi_tenant(
    tenants: Sequence[TenantConfig],
    fleet: Optional[FleetConfig] = None,
    utilization_target: float = 0.7,
    include_isolation_baseline: bool = True,
    control: Optional[ControlConfig] = None,
    observe=None,
    capture=None,
    replay=None,
    update_rate: float = 0.0,
    update_mix: Optional[str] = None,
    invalidation: str = "targeted",
    staleness_budget: int = 0,
    updates=None,
) -> MultiTenantReport:
    """End-to-end multi-tenant run: specs -> shared fleet -> report.

    Rates are resolved once (explicit or calibrated to each tenant's weight
    share of fleet capacity) and reused for the shared run *and* the optional
    isolation baselines, so every tenant sees byte-identical traffic alone
    and shared -- which is what makes the p99-inflation metric meaningful.
    Baselines re-simulate each tenant alone on an identical fresh fleet; skip
    them (``include_isolation_baseline=False``) when only fairness matters.

    ``control`` arms the elastic control plane for the *shared* run only: the
    isolation baselines stay fixed-fleet, so p99 inflation keeps comparing
    against the uncontrolled contract the tenant was promised.  ``observe``
    likewise instruments only the shared run -- the solo baselines would
    otherwise emit duplicate spans for the same request ids.

    ``capture`` threads a :class:`~repro.serving.trace.TraceWriter` through
    the *shared* run (tenant-tagged requests plus the resolved per-tenant
    rates in ``capture.meta``); ``replay`` takes a multi-tenant
    :class:`~repro.serving.trace.RequestTrace` and serves its exact merged
    stream against the same tenant specs -- calibration is skipped (rates
    come from the capture's metadata) and the isolation baselines replay
    each tenant's slice of the stream, so the whole report reproduces the
    captured run bit-for-bit.
    """
    fleet = fleet or FleetConfig()
    if update_rate < 0:
        raise ValueError("update_rate must be >= 0")
    # streaming updates: same deferred-fill pattern as run_serving -- the
    # stream object must exist before the simulator (it wraps every
    # tenant's graph), but its events need the resolved per-tenant rates
    fill_update_events = False
    if updates is None:
        replayed_updates = replay is not None and replay.num_updates > 0
        if update_rate > 0 or replayed_updates:
            if replayed_updates:
                invalidation = replay.meta.get("invalidation", invalidation)
                staleness_budget = int(replay.meta.get(
                    "staleness_budget", staleness_budget))
            updates = UpdateStream(events=(), policy=invalidation,
                                   staleness_budget_versions=staleness_budget)
            fill_update_events = True
    shared = MultiTenantSimulator(tenants, fleet, control=control,
                                  observe=observe, capture=capture,
                                  updates=updates)
    if replay is not None:
        requests, rates = _replay_stream(replay, shared)
        streams = split_tenant_stream(requests)
    else:
        rates = shared.calibrate_rates(utilization_target)
        streams = shared.tenant_streams(rates)
        requests = merge_tenant_streams(streams)
    if fill_update_events:
        if replay is not None and replay.num_updates > 0:
            updates.events = replay.to_update_events()
        else:
            mix = parse_update_mix(update_mix) if update_mix else None
            merged: List = []
            for name in shared.tenant_names:
                rt = shared.runtimes[name]
                merged.extend(generate_update_stream(
                    rt.graph.num_vertices,
                    num_updates=int(round(
                        update_rate * rt.config.num_requests)),
                    rate_ups=update_rate * rates[name], mix=mix,
                    seed=rt.seed, tenant=name))
            merged.sort(key=lambda e: (e.arrival_time_s, e.tenant))
            # renumber in merged arrival order so the captured trace's
            # update ids are the offered sequence, like request ids
            updates.events = [replace(e, update_id=i)
                              for i, e in enumerate(merged)]
    if capture is not None:
        capture.meta.update({
            "kind": "serve-tenants", "fleet_seed": fleet.seed,
            "num_chips": fleet.num_chips,
            "rates": {name: rates[name] for name in shared.tenant_names},
            "tenants": [{
                "name": t.name, "dataset": t.dataset, "model": t.model,
                "num_hops": t.num_hops, "fanout": t.fanout,
                "popularity_skew": t.popularity_skew,
                "seed": shared.runtimes[t.name].seed,
                "slo_s": shared.runtimes[t.name].slo_s,
            } for t in tenants],
        })
        if updates is not None:
            capture.meta.update({
                "update_rate": update_rate,
                "invalidation": updates.policy,
                "staleness_budget": updates.staleness_budget_versions,
            })
            if update_mix:
                capture.meta["update_mix"] = update_mix
        if replay is not None:
            # re-capturing a replay keeps the original workload's update
            # provenance, so the new trace file reproduces the one replayed
            for key in ("update_rate", "update_mix", "invalidation",
                        "staleness_budget"):
                if key in replay.meta:
                    capture.meta[key] = replay.meta[key]
    report = shared.run(requests, rates)
    if include_isolation_baseline:
        for tenant in tenants:
            # pin the seed the shared run derived for this tenant, so the
            # solo baseline sees the identical graph, sampler, probe and SLO
            pinned = replace(tenant,
                             seed=shared.runtimes[tenant.name].seed)
            # a mutating run's baseline replays the tenant's own slice of
            # the update stream, so solo and shared serve the same graph
            # history (p99 inflation compares like with like)
            solo_sim = MultiTenantSimulator(
                [pinned], fleet,
                updates=updates.for_tenant(tenant.name)
                if updates is not None else None)
            # under replay `streams` holds the shared stream's per-tenant
            # slices; re-merging renumbers them 0..n-1 in the same order the
            # generator emitted, so solo traffic matches the captured run's
            solo_stream = merge_tenant_streams(
                {tenant.name: streams.get(tenant.name, [])})
            solo = solo_sim.run(solo_stream, {tenant.name: rates[tenant.name]})
            report.solo[tenant.name] = solo.reports[tenant.name]
    return report


def _replay_stream(replay, shared: MultiTenantSimulator):
    """Validate a captured multi-tenant trace against the tenant specs and
    return its merged stream plus the per-tenant rates to report."""
    if not replay.multi_tenant:
        raise ValueError(
            "trace was captured from a single-tenant run; replay it with "
            "`serve --replay` (no --tenants)")
    unknown = [n for n in replay.tenant_names if n not in shared.runtimes]
    if unknown:
        raise ValueError(
            f"trace tenants {unknown} not in the tenant spec "
            f"(spec has: {', '.join(shared.tenant_names)})")
    requests = replay.to_requests()
    for r in requests:
        limit = shared.runtimes[r.tenant].graph.num_vertices
        if not 0 <= r.target_vertex < limit:
            raise ValueError(
                f"trace targets vertex {r.target_vertex} for tenant "
                f"{r.tenant!r}, outside its graph's {limit} vertices (was "
                f"the trace captured against a different spec?)")
    stamped = replay.meta.get("rates") or {}
    rates: Dict[str, float] = {}
    for name in shared.tenant_names:
        if name in stamped:
            rates[name] = float(stamped[name])
        else:
            # hand-built trace: report each tenant's own mean arrival rate
            times = [r.arrival_time_s for r in requests if r.tenant == name]
            span = times[-1] - times[0] if len(times) > 1 else 0.0
            rates[name] = (len(times) - 1) / span if span > 0 else 0.0
    return requests, rates
