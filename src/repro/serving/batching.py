"""Batch *formation* policies: FIFO, overlap-aware, and continuous batching.

The flush-trigger batchers in :mod:`repro.serving.batcher` decide *when* a
batch leaves the queue; this module decides *which* requests ride together.
That distinction matters because HyGCN's hybrid architecture wins exactly
when the fused graph handed to the aggregation engine is dense and
reuse-heavy: co-batching requests whose sampled k-hop neighbourhoods
intersect shrinks the deduped fused subgraph
(:meth:`~repro.serving.sampler.SubgraphSampler.fuse`), so every member
request's share of the aggregation work drops.  Three policies, registered
in :data:`BATCH_POLICIES`:

* ``fifo`` -- arrival-order formation with a timeout flush.  Functionally
  the classic ``timeout`` batcher; it exists as an explicitly named
  baseline so ``overlap`` / ``continuous`` runs have a like-for-like
  comparison point.
* ``overlap`` -- greedy signature-driven grouping.  Pending requests carry
  minhash signatures of their sampled neighbourhoods
  (:meth:`~repro.serving.sampler.SubgraphSampler.signature`); each flush
  anchors a group on the **oldest** pending request (so the timeout bound
  still holds per request) and greedily adds the pending request with the
  highest estimated Jaccard similarity to the group's running union
  signature -- a set-cover-style heuristic that concentrates overlapping
  neighbourhoods into the same dispatch.  Requests that overlap nothing
  are taken in arrival order, so a zero-overlap workload degrades to
  *exactly* the FIFO batches.
* ``continuous`` -- overlap formation plus **late joins**: a formed batch
  stays *open* while it waits for a chip, and a late-arriving request may
  join it instead of waiting for a fresh batch, bounded by two budgets --
  the **join window** (``join_window_s`` after formation) and the
  **staleness budget** (``staleness_s``: the batch's oldest member must
  not have waited longer than this when the join is admitted, so SLOs
  hold).  A batch is sealed the moment a chip starts serving it
  (:meth:`~repro.serving.batcher.Batcher.on_service_start`).

All times are seconds of simulated time.  Formation draws no randomness of
its own -- signatures come from the seeded sampler and ties break on
``(arrival, request_id)`` -- so grouping is bit-for-bit deterministic under
a fixed seed.  See ``docs/batching.md`` for the full lifecycle, cost model
and tuning guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .batcher import (
    BATCHING_POLICIES,
    Batch,
    Batcher,
    TimeoutBatcher,
    build_batcher,
)
from .sampler import estimate_jaccard
from .workload import Request

__all__ = [
    "BATCH_POLICIES",
    "ALL_BATCH_POLICIES",
    "FIFOBatcher",
    "OverlapBatcher",
    "ContinuousBatcher",
    "LateJoin",
    "build_batch_policy",
    "make_signature_fn",
    "resolve_signature_hops",
]

#: Formation-policy names accepted by the CLI and :func:`build_batch_policy`.
BATCH_POLICIES = ("fifo", "overlap", "continuous")

#: Everything ``--batch-policy`` accepts: flush triggers + formation policies.
ALL_BATCH_POLICIES = BATCHING_POLICIES + BATCH_POLICIES

_EPS = 1e-12

#: ``request -> uint64 minhash signature`` of its sampled neighbourhood.
SignatureFn = Callable[[Request], np.ndarray]


def resolve_signature_hops(overlap_k: Optional[int], num_hops: int) -> int:
    """Resolved signature depth: ``overlap_k`` (default 1) capped to the
    serving hop depth.

    The single source of the signature-depth rule -- the CLI's
    ``--overlap-k``, :attr:`FleetConfig.signature_hops` and both event
    loops' signature functions all resolve through here, so single- and
    multi-tenant runs can never drift onto different depths.  One hop is
    the default: direct neighbourhoods predict fused-subgraph shrinkage
    well and keep signatures cheap.
    """
    return min(1 if overlap_k is None else overlap_k, num_hops)


def make_signature_fn(sampler, num_hops: int, fanout: int,
                      overlap_k: Optional[int] = None) -> SignatureFn:
    """``request -> minhash signature`` bound to ``sampler``.

    Signatures honour per-request degrade overrides (a degraded request is
    grouped by the neighbourhood it will actually sample) at the depth
    :func:`resolve_signature_hops` resolves from ``overlap_k``.  Shared by
    the single-tenant fleet and every tenant runtime.
    """
    sig_hops = resolve_signature_hops(overlap_k, num_hops)

    def signature(request: Request) -> np.ndarray:
        hops = num_hops if request.degrade_hops is None \
            else request.degrade_hops
        fan = fanout if request.degrade_fanout is None \
            else request.degrade_fanout
        return sampler.signature(request.target_vertex,
                                 num_hops=min(sig_hops, hops), fanout=fan)
    return signature


@dataclass(frozen=True)
class LateJoin:
    """Audit record of one admitted late join (continuous batching).

    ``batch_age_s`` is how long after formation the join landed (must be
    within the join window); ``oldest_wait_s`` is how long the batch's
    oldest member had been waiting at that moment (must be within the
    staleness budget).  The acceptance tests replay this log to prove the
    budgets were never violated.
    """

    time_s: float
    batch_id: int
    batch_age_s: float
    oldest_wait_s: float


class FIFOBatcher(TimeoutBatcher):
    """Arrival-order formation with a timeout flush (the named baseline).

    Identical batches to ``timeout``; only the policy label differs, so
    reports and benchmarks can name the formation baseline explicitly.
    """

    def __init__(self, max_batch_size: int = 32, timeout_s: float = 5e-4,
                 tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, timeout_s=timeout_s,
                         tenant=tenant)
        self.policy = "fifo"


class OverlapBatcher(Batcher):
    """Greedy overlap-aware formation over minhash neighbourhood signatures.

    Every pending request carries the signature ``signature_fn`` computed on
    arrival (one memoised sampler lookup).  :meth:`flush` emits **one**
    group of at most ``max_batch_size`` requests: the oldest pending
    request anchors the group, then the candidate with the highest
    estimated Jaccard similarity against the group's union signature is
    added greedily (the union minhash is the elementwise minimum).  Ties --
    including the all-zero-similarity case of a disjoint workload -- break
    on arrival order, which is what makes zero-overlap formation reproduce
    FIFO batches exactly.  ``min_overlap`` (0 disables) stops growth when
    the best candidate's similarity falls below the threshold, trading
    batch size for purity; disjoint workloads then see single-request
    batches.

    Grouping only has room to work when the candidate pool is larger than
    one batch, so formation policies do **not** flush at the batch size
    cap: pending requests accumulate in a *formation pool* of up to
    ``pool_factor * max_batch_size`` requests (forced flush beyond that),
    and every flush emits one group of at most ``max_batch_size``.  The
    flush deadline stays timeout-style on the oldest pending request, so
    no request waits more than ``timeout_s`` to be formed no matter how
    poorly it overlaps -- under light, timeout-driven load the pool never
    fills and formation behaves exactly like FIFO.  Deterministic:
    signatures are seeded-sampler outputs, selection is
    argmax-with-first-tie over a stable order.
    """

    def __init__(self, max_batch_size: int = 32, timeout_s: float = 5e-4,
                 signature_fn: Optional[SignatureFn] = None,
                 min_overlap: float = 0.0, pool_factor: int = 4,
                 tenant: str = "", policy: str = "overlap"):
        super().__init__(max_batch_size=max_batch_size, policy=policy,
                         tenant=tenant)
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if not 0.0 <= min_overlap <= 1.0:
            raise ValueError("min_overlap must be in [0, 1]")
        if pool_factor < 1:
            raise ValueError("pool_factor must be >= 1")
        if signature_fn is None:
            raise ValueError(f"the {policy!r} policy needs a signature_fn")
        self.timeout_s = float(timeout_s)
        self.min_overlap = float(min_overlap)
        self.pool_size = int(pool_factor) * self.max_batch_size
        self._signature_fn = signature_fn
        self._sigs: List[np.ndarray] = []   # parallel to _pending

    # ------------------------------------------------------------------ #
    def add(self, request: Request, now: float) -> Optional[Batch]:
        """Pool ``request``; emits a group only when the pool overflows."""
        self._sigs.append(self._signature_fn(request))
        self._pending.append(request)
        if len(self._pending) >= self.pool_size:
            return self.flush(now)
        return None

    def next_deadline(self, now: float) -> Optional[float]:
        if not self._pending:
            return None
        return self._pending[0].arrival_time_s + self.timeout_s

    def flush(self, now: float) -> Optional[Batch]:
        """Form and emit one overlap group; leftovers stay pending.

        Callers must re-arm the flush timer after every emission (the
        leftover's oldest request defines a fresh deadline) -- both event
        loops do.  The batch is stamped with ``now``, the event-loop clock.
        """
        if not self._pending:
            return None
        chosen, union_sig = self._form_group()
        chosen_set = set(chosen)
        requests = [self._pending[i] for i in chosen]
        keep = [i for i in range(len(self._pending)) if i not in chosen_set]
        self._pending = [self._pending[i] for i in keep]
        self._sigs = [self._sigs[i] for i in keep]
        batch = Batch(batch_id=self._next_batch_id, requests=requests,
                      created_time_s=now, tenant=self.tenant)
        self._next_batch_id += 1
        self._register(batch, union_sig)
        if self.instrumentation is not None:
            self.instrumentation.on_batch_formed(now, batch)
        return batch

    # ------------------------------------------------------------------ #
    def _form_group(self):
        """Indices of the next group plus its union minhash signature.

        ``_pending`` is in arrival order (nondecreasing time), so index 0
        is the oldest request and anchors the group.
        """
        union_sig = self._sigs[0].copy()
        chosen = [0]                        # selection order, anchor first
        candidates = list(range(1, len(self._pending)))
        while candidates and len(chosen) < self.max_batch_size:
            sims = np.array([estimate_jaccard(self._sigs[i], union_sig)
                             for i in candidates])
            best = int(np.argmax(sims))     # first max: arrival-order ties
            if self.min_overlap > 0.0 and sims[best] < self.min_overlap:
                break
            pick = candidates.pop(best)
            chosen.append(pick)
            union_sig = np.minimum(union_sig, self._sigs[pick])
        return chosen, union_sig

    def _register(self, batch: Batch, union_sig: np.ndarray) -> None:
        """Hook for :class:`ContinuousBatcher` to keep the batch open."""


class ContinuousBatcher(OverlapBatcher):
    """Overlap formation plus late joins into formed-but-unstarted batches.

    A batch emitted by :meth:`flush` stays *open* until a chip starts
    serving it or its join window expires.  On every admitted cache-missing
    arrival the event loops offer the request via :meth:`try_join` before
    falling back to normal accumulation; the request joins the eligible
    open batch with the highest signature similarity.  ``min_overlap``
    binds joins exactly as it binds group growth, so a batch formed under
    a purity floor never refills with non-overlapping strangers.
    Eligibility (all checked at the event-loop clock ``now``):

    * the batch has spare capacity (``size < max_batch_size``);
    * ``now <= created_time_s + join_window_s`` (boundary inclusive);
    * ``now - oldest_arrival_s <= staleness_s`` -- the staleness budget:
      a join may grow the service time of requests already in the batch,
      so batches whose oldest member has already waited long are sealed
      to protect its SLO.

    Every admitted join is appended to :attr:`join_log` (a
    :class:`LateJoin` per event) so tests and reports can prove the
    budgets held.  Joins never rewrite ``created_time_s``.
    """

    def __init__(self, max_batch_size: int = 32, timeout_s: float = 5e-4,
                 signature_fn: Optional[SignatureFn] = None,
                 min_overlap: float = 0.0, pool_factor: int = 4,
                 join_window_s: float = 5e-4,
                 staleness_s: float = 1e-3, tenant: str = ""):
        super().__init__(max_batch_size=max_batch_size, timeout_s=timeout_s,
                         signature_fn=signature_fn, min_overlap=min_overlap,
                         pool_factor=pool_factor, tenant=tenant,
                         policy="continuous")
        if join_window_s <= 0:
            raise ValueError("join_window_s must be positive")
        if staleness_s <= 0:
            raise ValueError("staleness_s must be positive")
        self.join_window_s = float(join_window_s)
        self.staleness_s = float(staleness_s)
        self._open: Dict[int, List] = {}    # batch_id -> [batch, union_sig]
        self.join_log: List[LateJoin] = []

    # ------------------------------------------------------------------ #
    def try_join(self, request: Request, now: float) -> Optional[Batch]:
        self._expire(now)
        best_sim = -1.0
        best_entry = None
        sig = None
        for entry in self._open.values():
            batch, union_sig = entry
            if batch.size >= self.max_batch_size:
                continue
            if now - batch.oldest_arrival_s > self.staleness_s + _EPS:
                continue
            if sig is None:
                sig = self._signature_fn(request)
            sim = estimate_jaccard(sig, union_sig)
            # the purity floor binds joins exactly like group growth: a
            # batch formation kept pure must not refill with strangers
            if self.min_overlap > 0.0 and sim < self.min_overlap:
                continue
            if sim > best_sim:      # strict: ties keep the oldest open batch
                best_sim = sim
                best_entry = entry
        if best_entry is None:
            if self._open:
                self.late_join_rejects += 1
            return None
        batch, union_sig = best_entry
        batch.requests.append(request)
        batch.late_joins += 1
        # the join changed the batch's membership: any stamped demand
        # profile (shape-aware dispatch) is stale now, force a re-stamp
        batch.profile = None
        self.late_joins += 1
        best_entry[1] = np.minimum(union_sig, sig)
        self.join_log.append(LateJoin(
            time_s=now, batch_id=batch.batch_id,
            batch_age_s=now - batch.created_time_s,
            oldest_wait_s=now - batch.oldest_arrival_s))
        if self.instrumentation is not None:
            self.instrumentation.on_late_join(now, batch, request)
        return batch

    def on_service_start(self, batch: Batch) -> None:
        self._open.pop(batch.batch_id, None)

    @property
    def open_batches(self) -> int:
        """Formed-but-unsealed batches currently accepting joins."""
        return len(self._open)

    # ------------------------------------------------------------------ #
    def _register(self, batch: Batch, union_sig: np.ndarray) -> None:
        self._open[batch.batch_id] = [batch, union_sig.copy()]

    def _expire(self, now: float) -> None:
        expired = [bid for bid, (batch, _) in self._open.items()
                   if now - batch.created_time_s > self.join_window_s + _EPS]
        for bid in expired:
            del self._open[bid]


def build_batch_policy(policy: str, max_batch_size: int = 32,
                       timeout_s: float = 5e-4, slo_s: float = 2e-3,
                       signature_fn: Optional[SignatureFn] = None,
                       min_overlap: float = 0.0, pool_factor: int = 4,
                       join_window_s: Optional[float] = None,
                       staleness_s: Optional[float] = None,
                       tenant: str = "") -> Batcher:
    """Construct the batcher named by ``policy`` -- any of the six.

    The flush-trigger trio (:data:`~repro.serving.batcher.BATCHING_POLICIES`)
    delegates to :func:`~repro.serving.batcher.build_batcher`; the formation
    trio (:data:`BATCH_POLICIES`) is built here.  ``overlap`` and
    ``continuous`` require ``signature_fn``.  ``join_window_s`` defaults to
    ``timeout_s`` (a batch accepts joins for about as long as it was
    allowed to form) and ``staleness_s`` to half of ``slo_s`` (joins stop
    while the oldest member still has half its budget for queueing and
    service); all times in seconds.
    """
    if policy in BATCHING_POLICIES:
        return build_batcher(policy, max_batch_size=max_batch_size,
                             timeout_s=timeout_s, slo_s=slo_s, tenant=tenant)
    if policy == "fifo":
        return FIFOBatcher(max_batch_size=max_batch_size, timeout_s=timeout_s,
                           tenant=tenant)
    if policy == "overlap":
        return OverlapBatcher(max_batch_size=max_batch_size,
                              timeout_s=timeout_s, signature_fn=signature_fn,
                              min_overlap=min_overlap,
                              pool_factor=pool_factor, tenant=tenant)
    if policy == "continuous":
        return ContinuousBatcher(
            max_batch_size=max_batch_size, timeout_s=timeout_s,
            signature_fn=signature_fn, min_overlap=min_overlap,
            pool_factor=pool_factor,
            join_window_s=join_window_s if join_window_s is not None
            else timeout_s,
            staleness_s=staleness_s if staleness_s is not None
            else 0.5 * slo_s,
            tenant=tenant)
    raise ValueError(f"unknown batch policy {policy!r}; "
                     f"choose from {ALL_BATCH_POLICIES}")
