"""Per-request k-hop subgraph extraction.

Each serving request asks for the embedding of one target vertex, but a GCN
layer needs the k-hop in-neighbourhood of that vertex to compute it.  The
:class:`SubgraphSampler` extracts that neighbourhood as a small standalone
:class:`~repro.graphs.graph.Graph` (local vertex ids, sliced features) so the
rest of the stack -- the batcher, the fleet, the HyGCN simulator -- can treat
a request exactly like any other workload graph.

The per-hop fan-out cap mirrors GraphSage-style sampled serving (and reuses
the same uniform-selection semantics as :mod:`repro.graphs.sampling`): at most
``fanout`` in-neighbours of each frontier vertex are expanded.  Extraction is
deterministic per (seed, target) regardless of request order, which keeps the
result cache semantics honest, and an internal LRU memo avoids re-extracting
hot vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.graph import CSRMatrix, Graph
from .cache import LRUCache

__all__ = ["SubgraphSample", "SubgraphSampler"]


@dataclass(frozen=True)
class SubgraphSample:
    """The materialised neighbourhood of one target vertex.

    ``vertices[i]`` is the global id of local vertex ``i``; the target is
    always local vertex 0.
    """

    target_vertex: int
    vertices: Tuple[int, ...]
    graph: Graph

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


class SubgraphSampler:
    """Extracts capped k-hop in-neighbourhood subgraphs from a base graph."""

    def __init__(self, graph: Graph, num_hops: int = 2, fanout: int = 8,
                 seed: int = 0, memo_size: int = 2048):
        if num_hops < 0:
            raise ValueError("num_hops must be >= 0")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.graph = graph
        self.num_hops = int(num_hops)
        self.fanout = int(fanout)
        self.seed = int(seed)
        self._memo = LRUCache(memo_size)

    def extract(self, target_vertex: int, num_hops: Optional[int] = None,
                fanout: Optional[int] = None) -> SubgraphSample:
        """Return the (memoised) k-hop subgraph rooted at ``target_vertex``.

        ``num_hops``/``fanout`` override the sampler defaults for this call --
        the control plane's degradation ladder uses them to serve overload
        traffic from a shallower/narrower neighbourhood.  Overridden
        extractions are memoised under their own ``(target, hops, fanout)``
        key, so degraded and full-fidelity samples never alias.
        """
        if not 0 <= target_vertex < self.graph.num_vertices:
            raise ValueError(f"target vertex {target_vertex} out of range")
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        if hops < 0:
            raise ValueError("num_hops must be >= 0")
        if fan < 1:
            raise ValueError("fanout must be >= 1")
        key = (target_vertex, hops, fan)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        sample = self._extract(target_vertex, hops, fan)
        self._memo.put(key, sample)
        return sample

    # ------------------------------------------------------------------ #
    def _extract(self, target_vertex: int, num_hops: int,
                 fanout: int) -> SubgraphSample:
        rng = np.random.default_rng((self.seed, target_vertex))
        local_of = {target_vertex: 0}
        order: List[int] = [target_vertex]
        edges: List[Tuple[int, int]] = []
        frontier = [target_vertex]
        for _ in range(num_hops):
            next_frontier: List[int] = []
            for v in frontier:
                neighbors = self.graph.in_neighbors(v)
                if len(neighbors) > fanout:
                    idx = rng.choice(len(neighbors), size=fanout, replace=False)
                    idx.sort()
                    neighbors = neighbors[idx]
                v_local = local_of[v]
                for u in neighbors:
                    u = int(u)
                    u_local = local_of.get(u)
                    if u_local is None:
                        u_local = len(order)
                        local_of[u] = u_local
                        order.append(u)
                        next_frontier.append(u)
                    edges.append((u_local, v_local))
            frontier = next_frontier
            if not frontier:
                break
        num_local = len(order)
        csr = CSRMatrix.from_edges(edges, num_local)
        features = self.graph.features[np.asarray(order, dtype=np.int64)]
        graph = Graph(csr, features, name=f"{self.graph.name}[v{target_vertex}]")
        return SubgraphSample(target_vertex=target_vertex,
                              vertices=tuple(order), graph=graph)
