"""Per-request k-hop subgraph extraction, neighbourhood signatures, fusion.

Each serving request asks for the embedding of one target vertex, but a GCN
layer needs the k-hop in-neighbourhood of that vertex to compute it.  The
:class:`SubgraphSampler` extracts that neighbourhood as a small standalone
:class:`~repro.graphs.graph.Graph` (local vertex ids, sliced features) so the
rest of the stack -- the batcher, the fleet, the HyGCN simulator -- can treat
a request exactly like any other workload graph.

The per-hop fan-out cap mirrors GraphSage-style sampled serving: at most
``fanout`` in-neighbours of each frontier vertex are expanded.  Extraction is
deterministic per ``(seed, target, num_hops, fanout)`` regardless of request
order -- the control plane's degradation ladder passes per-call hop/fanout
overrides, and each override shape is memoised under its own key -- which
keeps the result-cache semantics honest, and an internal LRU memo avoids
re-extracting hot vertices.

**Determinism contract (random-phase strided selection).**  Over-fanout
selection uses the HyGCN Sampler unit's interval-strided index mode
(Section 4.2) with a seeded random phase: an over-fanout vertex of
in-degree ``d`` keeps the neighbours at positions
``floor((u + j) * d / fanout)`` for ``j = 0..fanout-1``, where ``u`` is one
uniform phase drawn per over-fanout vertex.  Positions are strictly
increasing (``d / fanout > 1``), so exactly ``fanout`` distinct neighbours
survive and every neighbour's inclusion probability is ``fanout / d`` --
a classic systematic sample.  The phase stream is
``rng = default_rng((seed, target))`` (constructed lazily on the first hop
that needs it) drawing ``rng.random(n)`` per hop, ``n`` = that hop's
over-fanout frontier-vertex count in frontier order; under-fanout vertices
keep their full lists and never consume entropy.  One phase per vertex --
not one draw per candidate edge -- keeps selection O(fanout) even at the
1e4-degree hubs of power-law graphs, and the whole hop vectorizes into a
handful of array ops; any implementation consuming the same phase stream
reproduces the selection bit for bit, which is what makes the two cores
below provably interchangeable.

On top of extraction, this module provides the two primitives the
overlap-aware batching subsystem (:mod:`repro.serving.batching`) is built on:

* :meth:`SubgraphSampler.signature` -- a fixed-length **minhash signature**
  of a target's sampled neighbourhood.  Two signatures estimate the Jaccard
  similarity of the underlying neighbourhood vertex sets by the fraction of
  equal components, so the batcher can group overlapping requests without
  materialising unions;
* :meth:`SubgraphSampler.fuse` / :meth:`SubgraphSampler.fused_size` -- the
  **deduped union** of several samples: shared vertices appear once (their
  features are streamed once) and the edge set is the union, which is the
  fused graph one accelerator dispatch actually executes.  ``fused_size``
  is the cheap cost-model view (vertex counts only, no graph built) that
  the WFQ scheduler uses to price batches.

All of it is deterministic under the sampler ``seed`` and memoised in
bounded LRUs (``memo_size`` entries each for samples and signatures).

**Two cores, one contract.**  When the base graph is CSC-backed
(:class:`~repro.graphs.csc.CSCGraph` -- what :func:`~repro.graphs.datasets.\
load_dataset` returns), extraction, ``fused_size`` and ``fuse`` run on the
**array core**: frontier expansion is ``colptr``/``row`` slicing, local-id
assignment and dedup are sort-free scatter/gather passes over index arrays,
and edge lists are assembled as contiguous arrays instead of Python tuples.  On a plain
:class:`~repro.graphs.graph.Graph` the original object core runs.  The two
are **bit-for-bit equivalent** -- identical phase-stream consumption,
identical elementwise position arithmetic, identical local-id order,
identical canonical CSR output -- which
``tests/graphs/test_csc_equivalence.py`` proves differentially and
``benchmarks/bench_core_speed.py`` shows is >= 10x faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graphs.graph import CSRMatrix, Graph
from .cache import LRUCache

__all__ = ["SubgraphSample", "SubgraphSampler", "estimate_jaccard",
           "SIGNATURE_HASHES"]

#: Components per minhash signature.  16 one-permutation minhashes keep the
#: similarity estimate's standard error around 1/sqrt(16) = 0.25, plenty to
#: rank co-batching candidates, at 128 bytes per signature.
SIGNATURE_HASHES = 16


def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Estimated Jaccard similarity of two minhash signatures.

    The estimator is the fraction of equal components; both signatures must
    come from the same :class:`SubgraphSampler` (same seeded hash family).
    """
    if sig_a.shape != sig_b.shape:
        raise ValueError("signatures must have the same length")
    return float(np.mean(sig_a == sig_b))


@dataclass(frozen=True)
class SubgraphSample:
    """The materialised neighbourhood of one target vertex.

    ``vertices[i]`` is the *global* id (in the base graph) of local vertex
    ``i``; the target is always local vertex 0.  Samples are immutable and
    shared via the sampler's memo, so callers must never mutate ``graph``.
    """

    target_vertex: int
    vertices: Tuple[int, ...]
    graph: Graph
    #: Array-core twin of ``vertices`` (same ids, same order); ``None`` for
    #: object-core samples.  Excluded from equality so samples from the two
    #: cores compare equal when their contents do.
    vertex_ids: Optional[np.ndarray] = field(default=None, compare=False,
                                             repr=False)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def vertex_array(self) -> np.ndarray:
        """Global vertex ids as an ``int64`` array (either core)."""
        if self.vertex_ids is not None:
            return self.vertex_ids
        return np.asarray(self.vertices, dtype=np.int64)


class SubgraphSampler:
    """Extracts capped k-hop in-neighbourhood subgraphs from a base graph.

    ``num_hops`` / ``fanout`` are the default sampling shape; every public
    method accepts per-call overrides (used by the degradation ladder) and
    memoises each ``(target, hops, fanout)`` shape under its own key, so
    degraded and full-fidelity samples never alias in the memo.
    """

    def __init__(self, graph: Graph, num_hops: int = 2, fanout: int = 8,
                 seed: int = 0, memo_size: int = 2048):
        if num_hops < 0:
            raise ValueError("num_hops must be >= 0")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.graph = graph
        self.num_hops = int(num_hops)
        self.fanout = int(fanout)
        self.seed = int(seed)
        self._memo = LRUCache(memo_size)
        self._sig_memo = LRUCache(memo_size)
        #: Memo policy on a mutating graph (one with a ``version``
        #: attribute, i.e. a :class:`~repro.graphs.delta.DeltaGraph`):
        #: ``"targeted"`` drops exactly the memo entries whose sample
        #: contains a dirty vertex, ``"flush"`` clears both memos on any
        #: version change, ``"none"`` keeps stale entries (the serving
        #: loop's consistency tracker counts the resulting violations).
        self.invalidation = "targeted"
        #: graph version the cached arrays/memos were last synced against;
        #: ``None`` on immutable graphs, where _sync is a cheap no-op.
        self._graph_version = getattr(graph, "version", None)
        self._mutable = self._graph_version is not None
        # reverse index for targeted invalidation: global vertex id -> memo
        # keys whose cached sample contains it (only maintained on mutable
        # graphs; static runs pay nothing)
        self._vertex_keys: Dict[int, Set[Tuple]] = {}
        # graph version each live memo entry was computed at, and lifetime
        # drop counters (the consistency tracker folds these into
        # ConsistencyStats at the end of a run)
        self._key_versions: Dict[Tuple, int] = {}
        self.invalidated_samples = 0
        self.invalidated_signatures = 0
        #: True when the base graph is CSC-backed and the vectorized array
        #: core handles extraction / fusion (bit-identical to the object
        #: core -- see the module docstring).
        self.array_core = bool(getattr(graph, "is_csc", False))
        if self.array_core:
            self._colptr = graph.colptr
            self._row = graph.row
            # global id -> local id scratch table, -1 = unseen; reset to -1
            # for exactly the touched entries after every extraction, so
            # each extract pays O(subgraph), not O(graph)
            self._local_lut = np.full(graph.num_vertices, -1, dtype=np.int64)
            # first-occurrence scratch for _first_seen; never reset -- every
            # query overwrites the entries it reads before reading them
            self._pos_lut = np.empty(graph.num_vertices, dtype=np.int64)
        # Seeded universal-hash family for the minhash signatures: odd 64-bit
        # multipliers (bijective mod 2^64) plus xor masks, fixed per sampler
        # seed so signatures are comparable across the whole run.
        rng = np.random.default_rng((self.seed, 0x51697A7A))
        self._sig_mult = (rng.integers(1, 2 ** 62, size=SIGNATURE_HASHES,
                                       dtype=np.uint64) << np.uint64(1)) \
            | np.uint64(1)
        self._sig_xor = rng.integers(0, 2 ** 62, size=SIGNATURE_HASHES,
                                     dtype=np.uint64)

    # ------------------------------------------------------------------ #
    # Streaming-graph synchronisation
    # ------------------------------------------------------------------ #
    def _sync(self) -> None:
        """Catch up with a mutated base graph (no-op on immutable graphs).

        Called at every public entry point.  Refreshes the cached
        ``colptr``/``row`` references and grows the scratch LUTs when the
        graph gained vertices -- this structural part always runs, so the
        sampler never crashes on a grown graph -- then applies the memo
        :attr:`invalidation` policy to the entries the mutations made
        stale.
        """
        if not self._mutable:
            return
        version = self.graph.version
        if version == self._graph_version:
            return
        synced_from = self._graph_version
        self._graph_version = version
        if self.array_core:
            self._colptr = self.graph.colptr
            self._row = self.graph.row
            n = self.graph.num_vertices
            if n > self._local_lut.size:
                grown = np.full(n, -1, dtype=np.int64)
                grown[:self._local_lut.size] = self._local_lut
                self._local_lut = grown
                self._pos_lut = np.empty(n, dtype=np.int64)
        if self.invalidation == "flush":
            self._flush_memos()
        elif self.invalidation == "targeted":
            dirty = getattr(self.graph, "dirty_since", None)
            if dirty is None:
                # a mutable graph without change tracking: flush is the
                # only sound fallback
                self._flush_memos()
            else:
                self.invalidate_vertices(dirty(synced_from))

    def _flush_memos(self) -> None:
        self.invalidated_samples += len(self._memo)
        self.invalidated_signatures += len(self._sig_memo)
        self._memo.clear()
        self._sig_memo.clear()
        self._vertex_keys.clear()
        self._key_versions.clear()

    def invalidate_vertices(self, vertices: Iterable[int]) -> int:
        """Drop every memoised sample/signature containing ``vertices``.

        Returns the number of sample-memo entries dropped.  Uses the
        reverse vertex->keys index maintained on insertion, so the cost is
        proportional to the affected entries, not the memo size.
        """
        keys: Set[Tuple] = set()
        for v in np.asarray(vertices, dtype=np.int64).tolist():
            keys |= self._vertex_keys.pop(int(v), set())
        dropped = 0
        for key in keys:
            if self._memo.invalidate(key):
                dropped += 1
            if self._sig_memo.invalidate(key):
                self.invalidated_signatures += 1
            self._key_versions.pop(key, None)
        self.invalidated_samples += dropped
        return dropped

    def _register_sample(self, key: Tuple, sample: "SubgraphSample") -> None:
        """Index ``key`` under every vertex of ``sample`` (mutable graphs)."""
        for v in sample.vertex_array.tolist():
            self._vertex_keys.setdefault(int(v), set()).add(key)
        self._key_versions[key] = self._graph_version

    def forget(self, keys: Iterable[Tuple]) -> None:
        """Silently drop memo entries: no invalidation counting, no cache
        counter perturbation.

        Probe hygiene for mutating runs: the calibration probe shares the
        run's sampler, and any memo entries it left behind would make the
        run's invalidation accounting depend on whether the process-wide
        probe memo hit (run-to-run nondeterminism).  Static runs never need
        this -- their memo state does not feed any reported number.
        """
        for key in keys:
            sample = self._memo.peek(key)
            if sample is not None and self._mutable:
                for v in sample.vertex_array.tolist():
                    entry = self._vertex_keys.get(int(v))
                    if entry is not None:
                        entry.discard(key)
                        if not entry:
                            del self._vertex_keys[int(v)]
            self._memo.invalidate(key)
            self._sig_memo.invalidate(key)
            self._key_versions.pop(key, None)

    def memo_version(self, target_vertex: int, num_hops: Optional[int],
                     fanout: Optional[int]) -> Optional[int]:
        """Graph version the live memo entry for this shape was computed at
        (``None`` when nothing is memoised -- immutable graphs track no
        versions, so this is a mutable-graph-only probe)."""
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        return self._key_versions.get((target_vertex, hops, fan))

    def _first_seen(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of the first occurrence of each value in ``values``.

        Sort-free O(n) dedup: scattering positions in *reverse* makes the
        earliest index win, so an element is a first occurrence exactly
        when the scratch table still holds its own index.  Stale scratch
        entries are harmless -- only entries in ``values`` are read, and
        those were all just written.
        """
        pos = self._pos_lut
        pos[values[::-1]] = np.arange(values.size - 1, -1, -1)
        return pos[values] == np.arange(values.size)

    def extract(self, target_vertex: int, num_hops: Optional[int] = None,
                fanout: Optional[int] = None) -> SubgraphSample:
        """Return the (memoised) k-hop subgraph rooted at ``target_vertex``.

        ``num_hops``/``fanout`` override the sampler defaults for this call --
        the control plane's degradation ladder uses them to serve overload
        traffic from a shallower/narrower neighbourhood.  Overridden
        extractions are memoised under their own ``(target, hops, fanout)``
        key, so degraded and full-fidelity samples never alias.  Extraction
        is deterministic per ``(seed, target, hops, fanout)``: the RNG is
        re-seeded per target, so the memo (and the result cache built on
        top of it) can never observe request-order-dependent samples.
        """
        self._sync()
        if not 0 <= target_vertex < self.graph.num_vertices:
            raise ValueError(f"target vertex {target_vertex} out of range")
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        if hops < 0:
            raise ValueError("num_hops must be >= 0")
        if fan < 1:
            raise ValueError("fanout must be >= 1")
        key = (target_vertex, hops, fan)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if self.array_core:
            sample = self._extract_arrays(target_vertex, hops, fan)
        else:
            sample = self._extract(target_vertex, hops, fan)
        self._memo.put(key, sample)
        if self._mutable:
            self._register_sample(key, sample)
        return sample

    def extract_fresh(self, target_vertex: int,
                      num_hops: Optional[int] = None,
                      fanout: Optional[int] = None) -> SubgraphSample:
        """Memo-bypassing extraction: always recomputes from the current
        graph arrays and never reads, writes or counts against the memo.

        This is the consistency tracker's reference computation -- compare
        it against :meth:`extract` to detect a stale memo entry surviving
        an update (extraction is deterministic per ``(seed, target, hops,
        fanout)``, so any difference is staleness, not randomness).
        """
        self._sync()
        if not 0 <= target_vertex < self.graph.num_vertices:
            raise ValueError(f"target vertex {target_vertex} out of range")
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        if self.array_core:
            return self._extract_arrays(target_vertex, hops, fan)
        return self._extract(target_vertex, hops, fan)

    def signature_fresh(self, target_vertex: int,
                        num_hops: Optional[int] = None,
                        fanout: Optional[int] = None) -> np.ndarray:
        """Memo-bypassing :meth:`signature` (the tracker's reference)."""
        sample = self.extract_fresh(target_vertex, num_hops=num_hops,
                                    fanout=fanout)
        return self._signature_of(sample)

    def _signature_of(self, sample: "SubgraphSample") -> np.ndarray:
        """Minhash the vertex set of one sample (shared by both paths)."""
        vertices = sample.vertex_array.astype(np.uint64)
        # h_j(v) = ((v + 1) * mult_j) ^ xor_j over Z_2^64; the signature is
        # the per-hash minimum over the neighbourhood's vertex set.
        hashed = ((vertices[:, None] + np.uint64(1))
                  * self._sig_mult[None, :]) ^ self._sig_xor[None, :]
        sig = hashed.min(axis=0)
        sig.setflags(write=False)
        return sig

    # ------------------------------------------------------------------ #
    # Neighbourhood signatures (overlap-aware batching)
    # ------------------------------------------------------------------ #
    def signature(self, target_vertex: int, num_hops: Optional[int] = None,
                  fanout: Optional[int] = None) -> np.ndarray:
        """Minhash signature of the sampled neighbourhood of ``target_vertex``.

        Returns a read-only ``uint64`` vector of :data:`SIGNATURE_HASHES`
        components; compare two with :func:`estimate_jaccard`.  The
        signature summarises the *same* sampled neighbourhood that
        :meth:`extract` would fuse (default shape, or the given override
        shape -- typically a shallower ``num_hops`` than the serving shape,
        the CLI's ``--overlap-k``), so similar signatures genuinely predict
        fused-subgraph shrinkage.  Deterministic per ``(seed, target, hops,
        fanout)`` and memoised in its own LRU; identical targets always get
        bit-identical signatures, which is what routes duplicate hot
        requests into the same batch.
        """
        self._sync()
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        key = (target_vertex, hops, fan)
        cached = self._sig_memo.get(key)
        if cached is not None:
            return cached
        sample = self.extract(target_vertex, num_hops=hops, fanout=fan)
        sig = self._signature_of(sample)
        self._sig_memo.put(key, sig)
        return sig

    # ------------------------------------------------------------------ #
    # Fused-subgraph dedup (cost model + execution model)
    # ------------------------------------------------------------------ #
    def fused_size(self, shapes: Iterable[Tuple[int, Optional[int],
                                                Optional[int]]]
                   ) -> Tuple[int, int]:
        """``(fused_vertices, naive_vertices)`` of a batch of sample shapes.

        ``shapes`` is one ``(target, num_hops, fanout)`` entry per *request*
        (``None`` components mean the sampler default).  ``naive_vertices``
        counts every request's standalone neighbourhood size -- duplicates
        included, which is what a batcher oblivious to overlap would stream
        -- while ``fused_vertices`` is the deduped union the fused dispatch
        actually touches.  This is the cost-model view of :meth:`fuse`
        (counts only, no graph built); the WFQ scheduler prices batches
        with it.  Uses the extraction memo, so pricing a batch of hot
        targets costs dictionary lookups, not re-extraction.
        """
        self._sync()
        if self.array_core:
            arrays: List[np.ndarray] = []
            naive = 0
            for target, hops, fan in shapes:
                sample = self.extract(target, num_hops=hops, fanout=fan)
                naive += sample.num_vertices
                arrays.append(sample.vertex_array)
            if not arrays:
                return 0, 0
            concat = np.concatenate(arrays)
            return int(self._first_seen(concat).sum()), naive
        union = set()
        naive = 0
        for target, hops, fan in shapes:
            sample = self.extract(target, num_hops=hops, fanout=fan)
            naive += sample.num_vertices
            union.update(sample.vertices)
        return len(union), naive

    def fuse(self, samples: Sequence[SubgraphSample],
             name: str = "fused") -> Graph:
        """Deduped union of ``samples`` as one standalone fused graph.

        Vertices shared between neighbourhoods appear **once** (their
        features are sliced from the base graph once) and the edge set is
        the union of the samples' edge sets mapped onto the shared local id
        space -- this is the fused subgraph HyGCN's aggregation engine
        benefits from when co-batched neighbourhoods intersect.  Local ids
        follow first-seen order over ``samples``, so fusion is
        deterministic for a deterministic sample order.  The fused graph is
        marked ``memoize_workloads = False``: fusions are unique per
        dispatch and must not pin their merged feature matrices in the
        workload memo.
        """
        if not samples:
            raise ValueError("fuse requires at least one sample")
        self._sync()
        if self.array_core:
            return self._fuse_arrays(samples, name)
        local_of = {}
        order: List[int] = []
        for sample in samples:
            for gv in sample.vertices:
                if gv not in local_of:
                    local_of[gv] = len(order)
                    order.append(gv)
        edges: List[Tuple[int, int]] = []
        seen = set()
        for sample in samples:
            for v_local in range(sample.graph.num_vertices):
                v_global = sample.vertices[v_local]
                for u in sample.graph.neighbors(v_local):
                    # neighbors() yields out-edges, so the tuple keeps the
                    # (source, destination) convention _extract uses
                    edge = (local_of[v_global],
                            local_of[sample.vertices[int(u)]])
                    if edge not in seen:
                        seen.add(edge)
                        edges.append(edge)
        features = self.graph.features[np.asarray(order, dtype=np.int64)]
        csr = CSRMatrix.from_edges(edges, len(order))
        fused = Graph(csr, features, name=name)
        # fused batches are unique per dispatch; keeping them out of the
        # workload memo stops it pinning their merged feature matrices
        fused.memoize_workloads = False
        return fused

    def _fuse_arrays(self, samples: Sequence[SubgraphSample],
                     name: str) -> Graph:
        """Array-core :meth:`fuse`: index-array dedup instead of dict unions.

        Local ids follow first-seen order over ``samples`` (the sort-free
        :meth:`_first_seen` mask over the concatenated vertex arrays) and
        global->fused-local mapping is one gather through the scratch LUT;
        the union edge set is canonicalised by the same
        :meth:`~repro.graphs.graph.CSRMatrix.from_edges` sort/dedup the
        object core ends in -- so the fused graph is identical bit for bit.
        """
        concat = np.concatenate([s.vertex_array for s in samples])
        order = concat[self._first_seen(concat)]
        lut = self._local_lut
        lut[order] = np.arange(order.size)
        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        for sample in samples:
            csr = sample.graph.csr
            if csr.nnz == 0:
                continue
            vid = sample.vertex_array
            # sample-local (v -> u) out-edges mapped to fused local ids
            v_global = vid[np.repeat(np.arange(csr.num_rows),
                                     np.diff(csr.indptr))]
            u_global = vid[csr.indices]
            rows_parts.append(lut[v_global])
            cols_parts.append(lut[u_global])
        lut[order] = -1  # reset only the touched scratch entries
        if rows_parts:
            csr = CSRMatrix.from_arrays(np.concatenate(rows_parts),
                                        np.concatenate(cols_parts),
                                        order.size)
        else:
            csr = CSRMatrix.from_edges([], order.size)
        features = self.graph.features[order]
        fused = Graph(csr, features, name=name)
        fused.memoize_workloads = False
        return fused

    # ------------------------------------------------------------------ #
    def _extract_arrays(self, target_vertex: int, num_hops: int,
                        fanout: int) -> SubgraphSample:
        """Array-core k-hop extraction over ``colptr``/``row`` slices.

        Bit-identical to :meth:`_extract`: both cores consume the per-hop
        phase stream of the module-level determinism contract (one uniform
        per over-fanout frontier vertex; under-fanout vertices never touch
        the RNG) and compute the strided positions with the same
        elementwise float64 arithmetic, and new vertices take local ids in
        first-seen order over the concatenated per-hop neighbour stream --
        the same order the object core's dict scan assigns.
        """
        rng = None
        colptr, row = self._colptr, self._row
        lut = self._local_lut
        lut[target_vertex] = 0
        order_parts = [np.array([target_vertex], dtype=np.int64)]
        num_local = 1
        rows_parts: List[np.ndarray] = []   # edge sources, local ids
        cols_parts: List[np.ndarray] = []   # edge destinations, local ids
        frontier = order_parts[0]
        frontier_base = 0  # frontier local ids are always consecutive
        for _ in range(num_hops):
            starts = colptr[frontier]
            degs = colptr[frontier + 1] - starts
            counts = np.minimum(degs, fanout)
            seg_end = np.cumsum(counts)
            total = int(seg_end[-1])
            if total == 0:
                break
            seg_start = seg_end - counts
            over = np.nonzero(degs > fanout)[0]
            if over.size == 0:
                # every frontier vertex keeps its full list: the segment
                # layout equals the slice layout, so one gather suffices --
                # position j of segment i reads row[starts[i] + j]
                rel = np.arange(total) - np.repeat(seg_start, counts)
                neigh = row[np.repeat(starts, counts) + rel]
            else:
                full = np.nonzero(degs <= fanout)[0]
                neigh = np.empty(total, dtype=np.int64)
                if full.size:
                    f_counts = counts[full]
                    f_end = np.cumsum(f_counts)
                    rel = np.arange(int(f_end[-1])) - np.repeat(
                        f_end - f_counts, f_counts)
                    neigh[np.repeat(seg_start[full], f_counts) + rel] = \
                        row[np.repeat(starts[full], f_counts) + rel]
                if rng is None:
                    rng = np.random.default_rng((self.seed, target_vertex))
                # random-phase strided selection, whole hop at once: the
                # phase u and the position arithmetic are elementwise
                # identical to the object core's per-vertex expression
                u = rng.random(over.size)
                step = degs[over] / fanout
                offs = (u[:, None] * step[:, None]
                        + np.arange(fanout)[None, :] * step[:, None]
                        ).astype(np.int64)
                pos = (seg_start[over][:, None] + np.arange(fanout)).ravel()
                neigh[pos] = row[(starts[over][:, None] + offs).ravel()]
            dst_local = np.repeat(
                np.arange(frontier_base, frontier_base + frontier.size),
                counts)
            src_local = lut[neigh]
            unseen = src_local < 0
            fresh = neigh[unseen]
            if fresh.size:
                new_globals = fresh[self._first_seen(fresh)]
                lut[new_globals] = num_local + np.arange(new_globals.size)
                # patch only the previously-unseen entries instead of
                # re-gathering lut over the whole hop
                src_local[unseen] = lut[fresh]
                frontier_base = num_local
                num_local += new_globals.size
                order_parts.append(new_globals)
                frontier = new_globals
            else:
                frontier = np.empty(0, dtype=np.int64)
            rows_parts.append(src_local)
            cols_parts.append(dst_local)
            if frontier.size == 0:
                break
        order = np.concatenate(order_parts) if len(order_parts) > 1 \
            else order_parts[0]
        lut[order] = -1  # reset only the touched scratch entries
        if rows_parts:
            csr = CSRMatrix.from_arrays(np.concatenate(rows_parts),
                                        np.concatenate(cols_parts), num_local)
        else:
            csr = CSRMatrix.from_edges([], num_local)
        features = self.graph.features[order]
        graph = Graph(csr, features,
                      name=f"{self.graph.name}[v{target_vertex}]")
        order.setflags(write=False)
        return SubgraphSample(target_vertex=target_vertex,
                              vertices=tuple(order.tolist()), graph=graph,
                              vertex_ids=order)

    def _extract(self, target_vertex: int, num_hops: int,
                 fanout: int) -> SubgraphSample:
        # Seeding a Generator costs ~25us and consumes no entropy, so both
        # cores construct it lazily on the first hop that draws; the key
        # stream is identical to eager construction.
        rng = None
        local_of = {target_vertex: 0}
        order: List[int] = [target_vertex]
        edges: List[Tuple[int, int]] = []
        frontier = [target_vertex]
        for _ in range(num_hops):
            next_frontier: List[int] = []
            lists = [self.graph.in_neighbors(v) for v in frontier]
            num_over = sum(1 for n in lists if len(n) > fanout)
            if num_over:
                if rng is None:
                    rng = np.random.default_rng((self.seed, target_vertex))
                # one uniform phase per over-fanout vertex, frontier order
                phases = rng.random(num_over)
            pos = 0
            for v, neighbors in zip(frontier, lists):
                if len(neighbors) > fanout:
                    u = phases[pos]
                    pos += 1
                    step = len(neighbors) / fanout
                    idx = (u * step
                           + np.arange(fanout) * step).astype(np.int64)
                    neighbors = neighbors[idx]
                v_local = local_of[v]
                for u in neighbors:
                    u = int(u)
                    u_local = local_of.get(u)
                    if u_local is None:
                        u_local = len(order)
                        local_of[u] = u_local
                        order.append(u)
                        next_frontier.append(u)
                    edges.append((u_local, v_local))
            frontier = next_frontier
            if not frontier:
                break
        num_local = len(order)
        csr = CSRMatrix.from_edges(edges, num_local)
        features = self.graph.features[np.asarray(order, dtype=np.int64)]
        graph = Graph(csr, features, name=f"{self.graph.name}[v{target_vertex}]")
        return SubgraphSample(target_vertex=target_vertex,
                              vertices=tuple(order), graph=graph)
