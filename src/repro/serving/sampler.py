"""Per-request k-hop subgraph extraction, neighbourhood signatures, fusion.

Each serving request asks for the embedding of one target vertex, but a GCN
layer needs the k-hop in-neighbourhood of that vertex to compute it.  The
:class:`SubgraphSampler` extracts that neighbourhood as a small standalone
:class:`~repro.graphs.graph.Graph` (local vertex ids, sliced features) so the
rest of the stack -- the batcher, the fleet, the HyGCN simulator -- can treat
a request exactly like any other workload graph.

The per-hop fan-out cap mirrors GraphSage-style sampled serving (and reuses
the same uniform-selection semantics as :mod:`repro.graphs.sampling`): at most
``fanout`` in-neighbours of each frontier vertex are expanded.  Extraction is
deterministic per ``(seed, target, num_hops, fanout)`` regardless of request
order -- the control plane's degradation ladder passes per-call hop/fanout
overrides, and each override shape is memoised under its own key -- which
keeps the result-cache semantics honest, and an internal LRU memo avoids
re-extracting hot vertices.

On top of extraction, this module provides the two primitives the
overlap-aware batching subsystem (:mod:`repro.serving.batching`) is built on:

* :meth:`SubgraphSampler.signature` -- a fixed-length **minhash signature**
  of a target's sampled neighbourhood.  Two signatures estimate the Jaccard
  similarity of the underlying neighbourhood vertex sets by the fraction of
  equal components, so the batcher can group overlapping requests without
  materialising unions;
* :meth:`SubgraphSampler.fuse` / :meth:`SubgraphSampler.fused_size` -- the
  **deduped union** of several samples: shared vertices appear once (their
  features are streamed once) and the edge set is the union, which is the
  fused graph one accelerator dispatch actually executes.  ``fused_size``
  is the cheap cost-model view (vertex counts only, no graph built) that
  the WFQ scheduler uses to price batches.

All of it is deterministic under the sampler ``seed`` and memoised in
bounded LRUs (``memo_size`` entries each for samples and signatures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import CSRMatrix, Graph
from .cache import LRUCache

__all__ = ["SubgraphSample", "SubgraphSampler", "estimate_jaccard",
           "SIGNATURE_HASHES"]

#: Components per minhash signature.  16 one-permutation minhashes keep the
#: similarity estimate's standard error around 1/sqrt(16) = 0.25, plenty to
#: rank co-batching candidates, at 128 bytes per signature.
SIGNATURE_HASHES = 16


def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Estimated Jaccard similarity of two minhash signatures.

    The estimator is the fraction of equal components; both signatures must
    come from the same :class:`SubgraphSampler` (same seeded hash family).
    """
    if sig_a.shape != sig_b.shape:
        raise ValueError("signatures must have the same length")
    return float(np.mean(sig_a == sig_b))


@dataclass(frozen=True)
class SubgraphSample:
    """The materialised neighbourhood of one target vertex.

    ``vertices[i]`` is the *global* id (in the base graph) of local vertex
    ``i``; the target is always local vertex 0.  Samples are immutable and
    shared via the sampler's memo, so callers must never mutate ``graph``.
    """

    target_vertex: int
    vertices: Tuple[int, ...]
    graph: Graph

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


class SubgraphSampler:
    """Extracts capped k-hop in-neighbourhood subgraphs from a base graph.

    ``num_hops`` / ``fanout`` are the default sampling shape; every public
    method accepts per-call overrides (used by the degradation ladder) and
    memoises each ``(target, hops, fanout)`` shape under its own key, so
    degraded and full-fidelity samples never alias in the memo.
    """

    def __init__(self, graph: Graph, num_hops: int = 2, fanout: int = 8,
                 seed: int = 0, memo_size: int = 2048):
        if num_hops < 0:
            raise ValueError("num_hops must be >= 0")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.graph = graph
        self.num_hops = int(num_hops)
        self.fanout = int(fanout)
        self.seed = int(seed)
        self._memo = LRUCache(memo_size)
        self._sig_memo = LRUCache(memo_size)
        # Seeded universal-hash family for the minhash signatures: odd 64-bit
        # multipliers (bijective mod 2^64) plus xor masks, fixed per sampler
        # seed so signatures are comparable across the whole run.
        rng = np.random.default_rng((self.seed, 0x51697A7A))
        self._sig_mult = (rng.integers(1, 2 ** 62, size=SIGNATURE_HASHES,
                                       dtype=np.uint64) << np.uint64(1)) \
            | np.uint64(1)
        self._sig_xor = rng.integers(0, 2 ** 62, size=SIGNATURE_HASHES,
                                     dtype=np.uint64)

    def extract(self, target_vertex: int, num_hops: Optional[int] = None,
                fanout: Optional[int] = None) -> SubgraphSample:
        """Return the (memoised) k-hop subgraph rooted at ``target_vertex``.

        ``num_hops``/``fanout`` override the sampler defaults for this call --
        the control plane's degradation ladder uses them to serve overload
        traffic from a shallower/narrower neighbourhood.  Overridden
        extractions are memoised under their own ``(target, hops, fanout)``
        key, so degraded and full-fidelity samples never alias.  Extraction
        is deterministic per ``(seed, target, hops, fanout)``: the RNG is
        re-seeded per target, so the memo (and the result cache built on
        top of it) can never observe request-order-dependent samples.
        """
        if not 0 <= target_vertex < self.graph.num_vertices:
            raise ValueError(f"target vertex {target_vertex} out of range")
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        if hops < 0:
            raise ValueError("num_hops must be >= 0")
        if fan < 1:
            raise ValueError("fanout must be >= 1")
        key = (target_vertex, hops, fan)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        sample = self._extract(target_vertex, hops, fan)
        self._memo.put(key, sample)
        return sample

    # ------------------------------------------------------------------ #
    # Neighbourhood signatures (overlap-aware batching)
    # ------------------------------------------------------------------ #
    def signature(self, target_vertex: int, num_hops: Optional[int] = None,
                  fanout: Optional[int] = None) -> np.ndarray:
        """Minhash signature of the sampled neighbourhood of ``target_vertex``.

        Returns a read-only ``uint64`` vector of :data:`SIGNATURE_HASHES`
        components; compare two with :func:`estimate_jaccard`.  The
        signature summarises the *same* sampled neighbourhood that
        :meth:`extract` would fuse (default shape, or the given override
        shape -- typically a shallower ``num_hops`` than the serving shape,
        the CLI's ``--overlap-k``), so similar signatures genuinely predict
        fused-subgraph shrinkage.  Deterministic per ``(seed, target, hops,
        fanout)`` and memoised in its own LRU; identical targets always get
        bit-identical signatures, which is what routes duplicate hot
        requests into the same batch.
        """
        hops = self.num_hops if num_hops is None else int(num_hops)
        fan = self.fanout if fanout is None else int(fanout)
        key = (target_vertex, hops, fan)
        cached = self._sig_memo.get(key)
        if cached is not None:
            return cached
        sample = self.extract(target_vertex, num_hops=hops, fanout=fan)
        vertices = np.asarray(sample.vertices, dtype=np.uint64)
        # h_j(v) = ((v + 1) * mult_j) ^ xor_j over Z_2^64; the signature is
        # the per-hash minimum over the neighbourhood's vertex set.
        hashed = ((vertices[:, None] + np.uint64(1))
                  * self._sig_mult[None, :]) ^ self._sig_xor[None, :]
        sig = hashed.min(axis=0)
        sig.setflags(write=False)
        self._sig_memo.put(key, sig)
        return sig

    # ------------------------------------------------------------------ #
    # Fused-subgraph dedup (cost model + execution model)
    # ------------------------------------------------------------------ #
    def fused_size(self, shapes: Iterable[Tuple[int, Optional[int],
                                                Optional[int]]]
                   ) -> Tuple[int, int]:
        """``(fused_vertices, naive_vertices)`` of a batch of sample shapes.

        ``shapes`` is one ``(target, num_hops, fanout)`` entry per *request*
        (``None`` components mean the sampler default).  ``naive_vertices``
        counts every request's standalone neighbourhood size -- duplicates
        included, which is what a batcher oblivious to overlap would stream
        -- while ``fused_vertices`` is the deduped union the fused dispatch
        actually touches.  This is the cost-model view of :meth:`fuse`
        (counts only, no graph built); the WFQ scheduler prices batches
        with it.  Uses the extraction memo, so pricing a batch of hot
        targets costs dictionary lookups, not re-extraction.
        """
        union = set()
        naive = 0
        for target, hops, fan in shapes:
            sample = self.extract(target, num_hops=hops, fanout=fan)
            naive += sample.num_vertices
            union.update(sample.vertices)
        return len(union), naive

    def fuse(self, samples: Sequence[SubgraphSample],
             name: str = "fused") -> Graph:
        """Deduped union of ``samples`` as one standalone fused graph.

        Vertices shared between neighbourhoods appear **once** (their
        features are sliced from the base graph once) and the edge set is
        the union of the samples' edge sets mapped onto the shared local id
        space -- this is the fused subgraph HyGCN's aggregation engine
        benefits from when co-batched neighbourhoods intersect.  Local ids
        follow first-seen order over ``samples``, so fusion is
        deterministic for a deterministic sample order.  The fused graph is
        marked ``memoize_workloads = False``: fusions are unique per
        dispatch and must not pin their merged feature matrices in the
        workload memo.
        """
        if not samples:
            raise ValueError("fuse requires at least one sample")
        local_of = {}
        order: List[int] = []
        for sample in samples:
            for gv in sample.vertices:
                if gv not in local_of:
                    local_of[gv] = len(order)
                    order.append(gv)
        edges: List[Tuple[int, int]] = []
        seen = set()
        for sample in samples:
            for v_local in range(sample.graph.num_vertices):
                v_global = sample.vertices[v_local]
                for u in sample.graph.neighbors(v_local):
                    # neighbors() yields out-edges, so the tuple keeps the
                    # (source, destination) convention _extract uses
                    edge = (local_of[v_global],
                            local_of[sample.vertices[int(u)]])
                    if edge not in seen:
                        seen.add(edge)
                        edges.append(edge)
        features = self.graph.features[np.asarray(order, dtype=np.int64)]
        csr = CSRMatrix.from_edges(edges, len(order))
        fused = Graph(csr, features, name=name)
        # fused batches are unique per dispatch; keeping them out of the
        # workload memo stops it pinning their merged feature matrices
        fused.memoize_workloads = False
        return fused

    # ------------------------------------------------------------------ #
    def _extract(self, target_vertex: int, num_hops: int,
                 fanout: int) -> SubgraphSample:
        rng = np.random.default_rng((self.seed, target_vertex))
        local_of = {target_vertex: 0}
        order: List[int] = [target_vertex]
        edges: List[Tuple[int, int]] = []
        frontier = [target_vertex]
        for _ in range(num_hops):
            next_frontier: List[int] = []
            for v in frontier:
                neighbors = self.graph.in_neighbors(v)
                if len(neighbors) > fanout:
                    idx = rng.choice(len(neighbors), size=fanout, replace=False)
                    idx.sort()
                    neighbors = neighbors[idx]
                v_local = local_of[v]
                for u in neighbors:
                    u = int(u)
                    u_local = local_of.get(u)
                    if u_local is None:
                        u_local = len(order)
                        local_of[u] = u_local
                        order.append(u)
                        next_frontier.append(u)
                    edges.append((u_local, v_local))
            frontier = next_frontier
            if not frontier:
                break
        num_local = len(order)
        csr = CSRMatrix.from_edges(edges, num_local)
        features = self.graph.features[np.asarray(order, dtype=np.int64)]
        graph = Graph(csr, features, name=f"{self.graph.name}[v{target_vertex}]")
        return SubgraphSample(target_vertex=target_vertex,
                              vertices=tuple(order), graph=graph)
