"""LRU caches with hit-rate accounting for the serving stack.

Production GNN serving deployments put small caches in front of the
accelerator fleet: a *result* cache that answers repeat requests for
recently-inferred vertices without touching a chip, and per-chip *feature*
caches that model on-chip reuse of vertex features across consecutive
batches.  Both roles are served by the same :class:`LRUCache` here; the
:class:`CacheStats` counters feed the hit-rate column of the serving report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Counters accumulated over the lifetime of one cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A fixed-capacity least-recently-used cache.

    ``capacity`` counts entries, not bytes; a capacity of zero disables the
    cache entirely (every ``get`` misses, every ``put`` is dropped), which the
    CLI uses for ``--cache-size 0`` ablations.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership probe that does not touch recency or the counters."""
        return key in self._entries

    def get(self, key: Hashable, default: Optional[object] = None) -> Optional[object]:
        """Look up ``key``, refreshing its recency and counting hit/miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return default

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key``; evicts the least-recently-used entry."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        self.stats.insertions += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def peek(self, key: Hashable, default: Optional[object] = None) -> Optional[object]:
        """Read ``key`` without touching recency or the hit/miss counters."""
        return self._entries.get(key, default)

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry if present; returns whether anything was dropped.

        The streaming layer's targeted invalidation hook: neither a hit nor
        a miss nor an eviction is counted (the entry is not aged out by
        pressure, it is revoked by an update), so invalidation never
        perturbs the hit-rate accounting.
        """
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def keys(self):
        """Snapshot of the cached keys, LRU-first (read-only convenience)."""
        return list(self._entries.keys())

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        self._entries.clear()
