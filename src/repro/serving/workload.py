"""Request traffic generators for the serving simulation.

A serving workload is a stream of per-target-vertex inference requests.  Three
arrival processes are provided:

* ``poisson`` -- memoryless arrivals at a fixed mean rate, the standard
  open-loop load model;
* ``bursty``  -- a two-state Markov-modulated Poisson process that alternates
  between an ON phase (``burst_factor`` times the mean rate) and a quiet OFF
  phase, calibrated so the long-run rate still equals ``rate_rps``;
* ``trace``   -- replay of an explicit timestamp list (e.g. captured from a
  production front-end log).

Target vertices are drawn with a Zipf-like popularity skew: real recommendation
and social-graph traffic concentrates on hub entities, which is exactly what
makes the result cache in :mod:`repro.serving.cache` earn its keep.
All generators are deterministic under ``seed``.

For multi-tenant serving (:mod:`repro.serving.tenancy`) each tenant generates
its own stream against its own graph; :func:`merge_tenant_streams` interleaves
the per-tenant streams into one time-sorted sequence with globally unique
request ids and a ``tenant`` tag on every request.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "ARRIVAL_PROCESSES",
    "Request",
    "WorkloadConfig",
    "RequestGenerator",
    "poisson_arrival_times",
    "bursty_arrival_times",
    "trace_arrival_times",
    "merge_tenant_streams",
    "split_tenant_stream",
]

#: Arrival-process names accepted by the CLI and :class:`WorkloadConfig`.
ARRIVAL_PROCESSES = ("poisson", "bursty", "trace")


@dataclass(frozen=True)
class Request:
    """One inference request: embed ``target_vertex`` arriving at a given time.

    ``tenant`` is empty for single-tenant serving; multi-tenant streams tag
    every request with the owning tenant's name (``target_vertex`` is then an
    id in *that tenant's* graph).
    """

    request_id: int
    target_vertex: int
    arrival_time_s: float
    tenant: str = ""


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the request stream.

    ``popularity_skew`` is the Zipf exponent of the target-vertex distribution
    (0 = uniform).  ``burst_factor`` and ``on_fraction`` only matter for the
    bursty process; the OFF-phase rate is derived so the long-run mean rate
    stays ``rate_rps``, which requires ``burst_factor < 1 / on_fraction``.
    """

    num_requests: int = 1000
    rate_rps: float = 10_000.0
    arrival: str = "poisson"
    popularity_skew: float = 0.8
    burst_factor: float = 5.0
    on_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}")
        if self.popularity_skew < 0:
            raise ValueError("popularity_skew must be >= 0")
        if not 0 < self.on_fraction < 1:
            raise ValueError("on_fraction must be in (0, 1)")
        if self.arrival == "bursty" and self.burst_factor * self.on_fraction >= 1.0:
            raise ValueError("burst_factor must be < 1 / on_fraction to keep the "
                             "long-run rate equal to rate_rps")


def poisson_arrival_times(num_requests: int, rate_rps: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson process with mean rate ``rate_rps``."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrival_times(
    num_requests: int,
    rate_rps: float,
    seed: int = 0,
    burst_factor: float = 5.0,
    on_fraction: float = 0.1,
    num_cycles: int = 10,
) -> np.ndarray:
    """Arrival times of a two-state (ON/OFF) Markov-modulated Poisson process.

    The ON phase runs at ``burst_factor * rate_rps``; the OFF-phase rate is
    chosen so the time-averaged rate equals ``rate_rps``.  Phase durations are
    exponential with means sized so roughly ``num_cycles`` ON/OFF cycles fit
    into the expected stream duration.
    """
    if burst_factor * on_fraction >= 1.0:
        raise ValueError("burst_factor must be < 1 / on_fraction")
    rng = np.random.default_rng(seed)
    on_rate = rate_rps * burst_factor
    off_rate = rate_rps * (1.0 - burst_factor * on_fraction) / (1.0 - on_fraction)
    expected_duration = num_requests / rate_rps
    cycle_s = expected_duration / max(1, num_cycles)
    mean_on_s = cycle_s * on_fraction
    mean_off_s = cycle_s * (1.0 - on_fraction)

    times: List[float] = []
    now = 0.0
    on_phase = True
    while len(times) < num_requests:
        phase_len = rng.exponential(mean_on_s if on_phase else mean_off_s)
        rate = on_rate if on_phase else off_rate
        t = now
        while len(times) < num_requests:
            t += rng.exponential(1.0 / rate)
            if t > now + phase_len:
                break
            times.append(t)
        now += phase_len
        on_phase = not on_phase
    return np.asarray(times[:num_requests])


def trace_arrival_times(trace: Sequence[float], num_requests: Optional[int] = None) -> np.ndarray:
    """Validate and normalise an explicit timestamp trace for replay.

    Timestamps are sorted, shifted so the first arrival is at t=0, and
    truncated to ``num_requests`` when given.
    """
    times = np.sort(np.asarray(list(trace), dtype=np.float64))
    if times.size and times[0] < 0:
        raise ValueError("trace timestamps must be non-negative")
    if times.size:
        times = times - times[0]
    if num_requests is not None:
        times = times[:num_requests]
    return times


class RequestGenerator:
    """Deterministic (seeded) generator of one serving request stream."""

    def __init__(self, num_vertices: int, config: WorkloadConfig):
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.num_vertices = int(num_vertices)
        self.config = config

    # ------------------------------------------------------------------ #
    def arrival_times(self, trace: Optional[Sequence[float]] = None) -> np.ndarray:
        """Arrival timestamps according to the configured process."""
        cfg = self.config
        if cfg.arrival == "trace":
            if trace is None:
                raise ValueError("arrival='trace' requires an explicit trace")
            times = trace_arrival_times(trace, cfg.num_requests)
            if times.size < cfg.num_requests:
                raise ValueError(
                    f"trace has {times.size} timestamps but num_requests is "
                    f"{cfg.num_requests}")
            return times
        if cfg.arrival == "bursty":
            return bursty_arrival_times(cfg.num_requests, cfg.rate_rps, seed=cfg.seed,
                                        burst_factor=cfg.burst_factor,
                                        on_fraction=cfg.on_fraction)
        return poisson_arrival_times(cfg.num_requests, cfg.rate_rps, seed=cfg.seed)

    def target_vertices(self) -> np.ndarray:
        """Per-request target vertices drawn from the skewed popularity law.

        The popularity ranking is a seeded permutation of the vertex ids so the
        hot set is not simply the lowest ids (which would alias with the
        locality dispatch partitioning).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        if cfg.popularity_skew == 0:
            return rng.integers(0, self.num_vertices, size=cfg.num_requests)
        ranks = np.arange(1, self.num_vertices + 1, dtype=np.float64)
        weights = ranks ** -cfg.popularity_skew
        weights /= weights.sum()
        rank_draws = rng.choice(self.num_vertices, size=cfg.num_requests, p=weights)
        rank_to_vertex = rng.permutation(self.num_vertices)
        return rank_to_vertex[rank_draws]

    def generate(self, trace: Optional[Sequence[float]] = None) -> List[Request]:
        """Materialise the request stream, sorted by arrival time."""
        times = self.arrival_times(trace)
        targets = self.target_vertices()
        return [
            Request(request_id=i, target_vertex=int(targets[i]),
                    arrival_time_s=float(times[i]))
            for i in range(self.config.num_requests)
        ]


def merge_tenant_streams(
        streams: Mapping[str, Sequence[Request]]) -> List[Request]:
    """Interleave per-tenant request streams into one time-sorted stream.

    Every request is re-tagged with its tenant's name and re-numbered so
    request ids are globally unique across tenants.  Ties in arrival time
    break by tenant name then original id, keeping the merge deterministic
    regardless of dict insertion order.
    """
    tagged: List[Request] = []
    for name, stream in streams.items():
        if not name:
            raise ValueError("tenant names must be non-empty")
        tagged.extend(replace(r, tenant=name) for r in stream)
    tagged.sort(key=lambda r: (r.arrival_time_s, r.tenant, r.request_id))
    return [replace(r, request_id=i) for i, r in enumerate(tagged)]


def split_tenant_stream(requests: Sequence[Request]) -> Dict[str, List[Request]]:
    """Group a merged stream back into per-tenant lists (arrival order kept)."""
    by_tenant: Dict[str, List[Request]] = {}
    for r in requests:
        by_tenant.setdefault(r.tenant, []).append(r)
    return by_tenant
