"""Request traffic generators for the serving simulation.

A serving workload is a stream of per-target-vertex inference requests.  Three
arrival processes are provided:

* ``poisson`` -- memoryless arrivals at a fixed mean rate, the standard
  open-loop load model;
* ``bursty``  -- a two-state Markov-modulated Poisson process that alternates
  between an ON phase (``burst_factor`` times the mean rate) and a quiet OFF
  phase, calibrated so the long-run rate still equals ``rate_rps``;
* ``ramp``    -- a deterministic burst-ramp profile (quiet baseline, linear
  climb to ``peak_factor`` times the baseline, peak plateau, ramp back down),
  the canonical workload for exercising the elastic control plane in
  :mod:`repro.serving.control`: the climb forces scale-up decisions and the
  descent forces drain-before-remove scale-in;
* ``trace``   -- replay of an explicit timestamp list (e.g. captured from a
  production front-end log).

Target vertices are drawn with a Zipf-like popularity skew: real recommendation
and social-graph traffic concentrates on hub entities, which is exactly what
makes the result cache in :mod:`repro.serving.cache` earn its keep.
All generators are deterministic under ``seed``.

For multi-tenant serving (:mod:`repro.serving.tenancy`) each tenant generates
its own stream against its own graph; :func:`merge_tenant_streams` interleaves
the per-tenant streams into one time-sorted sequence with globally unique
request ids and a ``tenant`` tag on every request.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "ARRIVAL_PROCESSES",
    "Request",
    "WorkloadConfig",
    "RequestGenerator",
    "poisson_arrival_times",
    "bursty_arrival_times",
    "ramp_arrival_times",
    "trace_arrival_times",
    "merge_tenant_streams",
    "split_tenant_stream",
]

#: Arrival-process names accepted by the CLI and :class:`WorkloadConfig`.
ARRIVAL_PROCESSES = ("poisson", "bursty", "ramp", "trace")


@dataclass(frozen=True)
class Request:
    """One inference request: embed ``target_vertex`` arriving at a given time.

    ``tenant`` is empty for single-tenant serving; multi-tenant streams tag
    every request with the owning tenant's name (``target_vertex`` is then an
    id in *that tenant's* graph).

    ``degrade_level``/``degrade_hops``/``degrade_fanout`` are stamped by the
    control plane's degradation ladder (:mod:`repro.serving.control`) when an
    overloaded fleet serves the request at reduced sampling fidelity instead
    of shedding it; generators always emit full-fidelity requests
    (``degrade_level == 0``, overrides ``None``).
    """

    request_id: int
    target_vertex: int
    arrival_time_s: float
    tenant: str = ""
    degrade_level: int = 0
    degrade_hops: Optional[int] = None
    degrade_fanout: Optional[int] = None


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the request stream.

    ``popularity_skew`` is the Zipf exponent of the target-vertex distribution
    (0 = uniform).  ``burst_factor`` and ``on_fraction`` only matter for the
    bursty process; the OFF-phase rate is derived so the long-run mean rate
    stays ``rate_rps``, which requires ``burst_factor < 1 / on_fraction``.
    ``peak_factor``, ``ramp_fraction`` and ``peak_fraction`` only matter for
    the ramp process: the peak plateau runs at ``peak_factor`` times the quiet
    baseline, with the baseline derived so the long-run mean stays
    ``rate_rps``.
    """

    num_requests: int = 1000
    rate_rps: float = 10_000.0
    arrival: str = "poisson"
    popularity_skew: float = 0.8
    burst_factor: float = 5.0
    on_fraction: float = 0.1
    peak_factor: float = 4.0
    ramp_fraction: float = 0.25
    peak_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}")
        if self.popularity_skew < 0:
            raise ValueError("popularity_skew must be >= 0")
        if not 0 < self.on_fraction < 1:
            raise ValueError("on_fraction must be in (0, 1)")
        if self.arrival == "bursty" and self.burst_factor * self.on_fraction >= 1.0:
            raise ValueError("burst_factor must be < 1 / on_fraction to keep the "
                             "long-run rate equal to rate_rps")
        if self.peak_factor < 1:
            raise ValueError("peak_factor must be >= 1")
        if self.ramp_fraction <= 0 or self.peak_fraction <= 0 \
                or 2 * self.ramp_fraction + self.peak_fraction >= 1.0:
            raise ValueError("ramp_fraction and peak_fraction must be positive "
                             "with 2*ramp_fraction + peak_fraction < 1")


def poisson_arrival_times(num_requests: int, rate_rps: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson process with mean rate ``rate_rps``."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrival_times(
    num_requests: int,
    rate_rps: float,
    seed: int = 0,
    burst_factor: float = 5.0,
    on_fraction: float = 0.1,
    num_cycles: int = 10,
) -> np.ndarray:
    """Arrival times of a two-state (ON/OFF) Markov-modulated Poisson process.

    The ON phase runs at ``burst_factor * rate_rps``; the OFF-phase rate is
    chosen so the time-averaged rate equals ``rate_rps``.  Phase durations are
    exponential with means sized so roughly ``num_cycles`` ON/OFF cycles fit
    into the expected stream duration.
    """
    if burst_factor * on_fraction >= 1.0:
        raise ValueError("burst_factor must be < 1 / on_fraction")
    rng = np.random.default_rng(seed)
    on_rate = rate_rps * burst_factor
    off_rate = rate_rps * (1.0 - burst_factor * on_fraction) / (1.0 - on_fraction)
    expected_duration = num_requests / rate_rps
    cycle_s = expected_duration / max(1, num_cycles)
    mean_on_s = cycle_s * on_fraction
    mean_off_s = cycle_s * (1.0 - on_fraction)

    times: List[float] = []
    now = 0.0
    on_phase = True
    while len(times) < num_requests:
        phase_len = rng.exponential(mean_on_s if on_phase else mean_off_s)
        rate = on_rate if on_phase else off_rate
        t = now
        while len(times) < num_requests:
            t += rng.exponential(1.0 / rate)
            if t > now + phase_len:
                break
            times.append(t)
        now += phase_len
        on_phase = not on_phase
    return np.asarray(times[:num_requests])


def ramp_arrival_times(
    num_requests: int,
    rate_rps: float,
    seed: int = 0,
    peak_factor: float = 4.0,
    ramp_fraction: float = 0.25,
    peak_fraction: float = 0.2,
) -> np.ndarray:
    """Arrival times of an inhomogeneous Poisson process with a burst-ramp.

    The rate profile over the expected stream duration ``T`` is symmetric:
    a quiet baseline plateau, a linear ramp up over ``ramp_fraction * T``, a
    peak plateau of ``peak_fraction * T`` at ``peak_factor`` times the
    baseline, a linear ramp down, and a quiet tail.  The baseline rate is
    derived so the time-averaged rate equals ``rate_rps``.  Arrivals are
    drawn by time-rescaling a unit-rate Poisson process through the inverse
    integrated rate, so the stream is deterministic under ``seed``.
    """
    if peak_factor < 1:
        raise ValueError("peak_factor must be >= 1")
    if ramp_fraction <= 0 or peak_fraction <= 0 \
            or 2 * ramp_fraction + peak_fraction >= 1.0:
        raise ValueError("need 2*ramp_fraction + peak_fraction < 1 with both "
                         "fractions positive")
    if num_requests == 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    duration_s = num_requests / rate_rps
    quiet_fraction = (1.0 - 2 * ramp_fraction - peak_fraction) / 2.0
    # mean(lambda) = lo * (2q + r*(1+pf) + p*pf) must equal rate_rps
    mean_multiple = (2 * quiet_fraction + ramp_fraction * (1.0 + peak_factor)
                     + peak_fraction * peak_factor)
    rate_lo = rate_rps / mean_multiple
    rate_hi = peak_factor * rate_lo
    bounds = np.cumsum([0.0, quiet_fraction, ramp_fraction, peak_fraction,
                        ramp_fraction, quiet_fraction]) * duration_s
    grid = np.linspace(0.0, duration_s, 4096)
    profile = np.piecewise(
        grid,
        [grid < bounds[1],
         (grid >= bounds[1]) & (grid < bounds[2]),
         (grid >= bounds[2]) & (grid < bounds[3]),
         (grid >= bounds[3]) & (grid < bounds[4]),
         grid >= bounds[4]],
        [rate_lo,
         lambda t: rate_lo + (rate_hi - rate_lo)
         * (t - bounds[1]) / (bounds[2] - bounds[1]),
         rate_hi,
         lambda t: rate_hi - (rate_hi - rate_lo)
         * (t - bounds[3]) / (bounds[4] - bounds[3]),
         rate_lo])
    # integrated rate on the grid; invert it to map unit-rate event counts
    # back onto the clock (time-rescaling theorem)
    steps = np.diff(grid)
    integrated = np.concatenate(
        [[0.0], np.cumsum(0.5 * (profile[1:] + profile[:-1]) * steps)])
    unit_times = np.cumsum(rng.exponential(1.0, size=num_requests))
    times = np.interp(unit_times, integrated, grid)
    # events past the profile window continue at the baseline rate
    overflow = unit_times > integrated[-1]
    if overflow.any():
        times[overflow] = duration_s \
            + (unit_times[overflow] - integrated[-1]) / rate_lo
    return times


def trace_arrival_times(trace: Sequence[float], num_requests: Optional[int] = None) -> np.ndarray:
    """Validate and normalise an explicit timestamp trace for replay.

    Timestamps are sorted, shifted so the first arrival is at t=0, and
    truncated to ``num_requests`` when given.
    """
    times = np.sort(np.asarray(list(trace), dtype=np.float64))
    if times.size and times[0] < 0:
        raise ValueError("trace timestamps must be non-negative")
    if times.size:
        times = times - times[0]
    if num_requests is not None:
        times = times[:num_requests]
    return times


class RequestGenerator:
    """Deterministic (seeded) generator of one serving request stream."""

    def __init__(self, num_vertices: int, config: WorkloadConfig):
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.num_vertices = int(num_vertices)
        self.config = config

    # ------------------------------------------------------------------ #
    def arrival_times(self, trace: Optional[Sequence[float]] = None) -> np.ndarray:
        """Arrival timestamps according to the configured process."""
        cfg = self.config
        if cfg.arrival == "trace":
            if trace is None:
                raise ValueError("arrival='trace' requires an explicit trace")
            times = trace_arrival_times(trace, cfg.num_requests)
            if times.size < cfg.num_requests:
                raise ValueError(
                    f"trace has {times.size} timestamps but num_requests is "
                    f"{cfg.num_requests}")
            return times
        if cfg.arrival == "bursty":
            return bursty_arrival_times(cfg.num_requests, cfg.rate_rps, seed=cfg.seed,
                                        burst_factor=cfg.burst_factor,
                                        on_fraction=cfg.on_fraction)
        if cfg.arrival == "ramp":
            return ramp_arrival_times(cfg.num_requests, cfg.rate_rps, seed=cfg.seed,
                                      peak_factor=cfg.peak_factor,
                                      ramp_fraction=cfg.ramp_fraction,
                                      peak_fraction=cfg.peak_fraction)
        return poisson_arrival_times(cfg.num_requests, cfg.rate_rps, seed=cfg.seed)

    def target_vertices(self) -> np.ndarray:
        """Per-request target vertices drawn from the skewed popularity law.

        The popularity ranking is a seeded permutation of the vertex ids so the
        hot set is not simply the lowest ids (which would alias with the
        locality dispatch partitioning).
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        if cfg.popularity_skew == 0:
            return rng.integers(0, self.num_vertices, size=cfg.num_requests)
        ranks = np.arange(1, self.num_vertices + 1, dtype=np.float64)
        weights = ranks ** -cfg.popularity_skew
        weights /= weights.sum()
        rank_draws = rng.choice(self.num_vertices, size=cfg.num_requests, p=weights)
        rank_to_vertex = rng.permutation(self.num_vertices)
        return rank_to_vertex[rank_draws]

    def generate(self, trace: Optional[Sequence[float]] = None) -> List[Request]:
        """Materialise the request stream, sorted by arrival time.

        ``trace`` is either a plain timestamp sequence (the classic
        ``arrival='trace'`` path: targets still come from the popularity
        law) or a full request trace -- any object with a
        ``to_requests()`` method, i.e. a
        :class:`~repro.serving.trace.RequestTrace` -- in which case the
        captured stream is replayed verbatim: per-request targets, tenant
        tags and degradation stamps included, after validating it against
        this generator's configuration.
        """
        if trace is not None and hasattr(trace, "to_requests"):
            return self._replay_requests(trace)
        times = self.arrival_times(trace)
        targets = self.target_vertices()
        return [
            Request(request_id=i, target_vertex=int(targets[i]),
                    arrival_time_s=float(times[i]))
            for i in range(self.config.num_requests)
        ]

    def _replay_requests(self, trace) -> List[Request]:
        """Validate and materialise a captured request trace for replay."""
        cfg = self.config
        if cfg.arrival != "trace":
            raise ValueError(
                f"replaying a request trace requires arrival='trace', "
                f"got {cfg.arrival!r}")
        requests: List[Request] = trace.to_requests()
        if len(requests) != cfg.num_requests:
            raise ValueError(
                f"trace has {len(requests)} requests but num_requests is "
                f"{cfg.num_requests}")
        for r in requests:
            if not 0 <= r.target_vertex < self.num_vertices:
                raise ValueError(
                    f"trace targets vertex {r.target_vertex}, outside this "
                    f"graph's {self.num_vertices} vertices (was the trace "
                    f"captured on a different dataset?)")
        return requests


def merge_tenant_streams(
        streams: Mapping[str, Sequence[Request]]) -> List[Request]:
    """Interleave per-tenant request streams into one time-sorted stream.

    Every request is re-tagged with its tenant's name and re-numbered so
    request ids are globally unique across tenants.  Ties in arrival time
    break by tenant name then original id, keeping the merge deterministic
    regardless of dict insertion order.
    """
    tagged: List[Request] = []
    for name, stream in streams.items():
        if not name:
            raise ValueError("tenant names must be non-empty")
        tagged.extend(replace(r, tenant=name) for r in stream)
    tagged.sort(key=lambda r: (r.arrival_time_s, r.tenant, r.request_id))
    return [replace(r, request_id=i) for i, r in enumerate(tagged)]


def split_tenant_stream(requests: Sequence[Request]) -> Dict[str, List[Request]]:
    """Group a merged stream back into per-tenant lists (arrival order kept)."""
    by_tenant: Dict[str, List[Request]] = {}
    for r in requests:
        by_tenant.setdefault(r.tenant, []).append(r)
    return by_tenant
