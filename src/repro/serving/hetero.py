"""Heterogeneous fleets: mixed HyGCN chip shapes with shape-aware dispatch.

HyGCN's central design question (the paper's Table 6 is one answer) is how
to split a chip's silicon between the irregular, memory-bound **aggregation**
phase and the regular, MAC-bound **combination** phase.  A serving fleet does
not have to commit to one answer: this module lets every chip carry a
different :class:`~repro.core.config.HyGCNConfig` *shape* and teaches the
dispatchers which shape suits which batch.

Three building blocks:

* **Shape presets** (:data:`SHAPE_PRESETS`) -- named
  :class:`~repro.core.config.HyGCNConfig` variants.  ``agg_heavy``
  provisions the memory system the aggregation phase is bound by (double
  the HBM channels, wide SIMD, big input/edge/aggregation buffers) at the
  price of a quarter of the systolic modules; ``comb_heavy`` doubles the
  systolic modules and the weight/output buffers behind the combination
  phase's MVMs at the price of SIMD width and aggregation-side buffering;
  ``balanced`` is the paper's Table 6 configuration.  A
  :class:`FleetSpec` composes presets into a fleet roster (inline, via
  :func:`fleet_spec_for_mix`, or from a JSON file via
  :func:`load_fleet_spec`).

* **Batch profiles** (:class:`BatchProfile`) -- a cheap, deterministic
  summary of what a batch will ask of a chip, computed from the sampler's
  memoised :meth:`~repro.serving.sampler.SubgraphSampler.fused_size`
  (no graph is built): the estimated deduped fused-vertex count, the
  estimated overlap ratio, and the tenant's feature length.  Profiles
  discretise into a small set of **buckets** (:meth:`BatchProfile.bucket`)
  so per-shape service rates can be learned per workload regime instead of
  per batch.

* **Shape scoring** (:class:`ShapeScorer`) -- an EWMA of *measured* service
  seconds per fused vertex, keyed ``(chip shape, profile bucket)`` and
  seeded from the per-shape probe batches the fleet already runs.  The
  ``shape-aware`` dispatch policy ranks schedulable chips by
  ``backlog + rate(shape, bucket) * est_fused_vertices`` and falls back to
  least-loaded whenever any candidate shape is still *cold* for the
  batch's bucket (no seed, no observation yet), so an unlearned regime is
  never routed on a guess.

Autoscaling composes with all of it: :class:`ShapeChooser` picks *which*
shape an elastic fleet should add (or retire first) under one of the
:data:`SCALE_SHAPE_POLICIES` -- ``cheapest-adequate`` (the lowest
silicon-cost shape whose learned rate for the currently dominant demand
bucket is within an adequacy factor of the best shape's) or
``bottleneck-phase`` (always the shape with the best rate for the dominant
bucket, i.e. attack the bottleneck regardless of cost).

Everything here is deterministic: presets are fixed configs, profiles come
from the seeded sampler's memos, the scorer folds in measured service times
in event order, and every tie breaks on names or chip ids.  See
``docs/heterogeneity.md`` for the scoring formula, a worked example and the
JSON schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import HyGCNConfig
from ..hw.dram import HBMConfig

__all__ = [
    "SHAPE_PRESETS",
    "SHAPE_MIXES",
    "SCALE_SHAPE_POLICIES",
    "DEFAULT_SHAPE",
    "ShapeSpec",
    "FleetSpec",
    "load_fleet_spec",
    "fleet_spec_for_mix",
    "shape_hw",
    "shape_cost",
    "shape_table",
    "BatchProfile",
    "make_profile_fn",
    "account_batch_service",
    "ShapeScorer",
    "ShapeChooser",
]

KIB = 1024
MIB = 1024 * 1024

#: The shape every homogeneous fleet implicitly runs (the paper's Table 6).
DEFAULT_SHAPE = "balanced"


def _build_presets() -> Dict[str, HyGCNConfig]:
    """The three named chip shapes.

    The presets deliberately trade resources instead of stacking them, so a
    mixed fleet has real routing decisions to make:

    * ``balanced`` -- the evaluated Table 6 configuration, competent at
      everything and best at nothing in particular.
    * ``agg_heavy`` -- double the HBM channels (512 GB/s), 1024 SIMD lanes
      and 4x the input/edge/aggregation buffers feed the irregular
      neighbourhood streaming that bounds the aggregation phase; only 4
      systolic modules and halved weight/output buffers remain for the
      combination phase.  Fastest when a batch's cost is dominated by
      feature/weight streaming (shallow neighbourhoods over long-feature
      graphs), slowest when it is MAC-dense.
    * ``comb_heavy`` -- 16 systolic modules (8192 PEs) plus doubled
      weight/output buffers attack the combination phase's MVMs; SIMD
      width and the aggregation-side buffers are halved and the HBM stack
      stays at the baseline 256 GB/s.  Fastest on MAC-dense batches (wide
      or deep sampled neighbourhoods, where every sampled vertex must be
      combined), no help when the batch is bandwidth-bound.
    """
    return {
        "balanced": HyGCNConfig(),
        "agg_heavy": HyGCNConfig(
            num_simd_cores=64, simd_width=16,
            num_systolic_modules=4,
            input_buffer_bytes=512 * KIB,
            edge_buffer_bytes=8 * MIB,
            aggregation_buffer_bytes=32 * MIB,
            weight_buffer_bytes=1 * MIB,
            output_buffer_bytes=2 * MIB,
            hbm=HBMConfig(num_channels=16),
        ),
        "comb_heavy": HyGCNConfig(
            num_simd_cores=16, simd_width=16,
            num_systolic_modules=16,
            input_buffer_bytes=64 * KIB,
            edge_buffer_bytes=1 * MIB,
            aggregation_buffer_bytes=8 * MIB,
            weight_buffer_bytes=4 * MIB,
            output_buffer_bytes=8 * MIB,
        ),
    }


#: Chip-shape presets accepted by :class:`FleetSpec` and the CLI.
SHAPE_PRESETS: Dict[str, HyGCNConfig] = _build_presets()

#: ``--shape-mix`` presets: fraction of the fleet per shape.  ``mixed`` is
#: the 50/50 agg/comb split the heterogeneity acceptance runs use; odd chip
#: counts round the remainder onto a ``balanced`` chip.
SHAPE_MIXES: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "balanced": (("balanced", 1.0),),
    "agg-heavy": (("agg_heavy", 1.0),),
    "comb-heavy": (("comb_heavy", 1.0),),
    "mixed": (("agg_heavy", 0.5), ("comb_heavy", 0.5)),
}

#: Scale-up shape-choice policies accepted by
#: :class:`~repro.serving.control.ControlConfig` and the CLI.
SCALE_SHAPE_POLICIES = ("cheapest-adequate", "bottleneck-phase")


def shape_hw(name: str) -> HyGCNConfig:
    """The :class:`HyGCNConfig` of preset ``name`` (actionable on typos)."""
    try:
        return SHAPE_PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown chip-shape preset {name!r}; "
                         f"choose from {sorted(SHAPE_PRESETS)}") from None


def shape_cost(hw: HyGCNConfig) -> float:
    """Relative silicon-cost proxy of one chip shape (arbitrary units).

    Weighs the resources the presets trade against each other: systolic
    PEs, SIMD lanes (a lane is several PEs' worth of datapath plus its
    operand bandwidth), on-chip SRAM capacity and HBM channels.  Only the
    *ordering* matters -- ``cheapest-adequate`` autoscaling uses it to
    prefer the leaner of two shapes that serve the demand equally well.
    """
    sram_kib = (hw.input_buffer_bytes + hw.edge_buffer_bytes
                + hw.weight_buffer_bytes + hw.output_buffer_bytes
                + hw.aggregation_buffer_bytes) / KIB
    return (hw.total_pes + 4.0 * hw.total_simd_lanes + 0.25 * sram_kib
            + 512.0 * hw.hbm.num_channels)


def shape_table() -> List[Dict[str, object]]:
    """One row per preset: the parameters a shape actually changes."""
    rows = []
    for name, hw in SHAPE_PRESETS.items():
        rows.append({
            "shape": name,
            "simd_lanes": hw.total_simd_lanes,
            "systolic_modules": hw.num_systolic_modules,
            "pes": hw.total_pes,
            "edge_buffer_mb": round(hw.edge_buffer_bytes / MIB, 2),
            "weight_buffer_mb": round(hw.weight_buffer_bytes / MIB, 2),
            "hbm_gbps": hw.hbm.peak_bandwidth_gbps,
            "rel_cost": round(shape_cost(hw) / shape_cost(SHAPE_PRESETS["balanced"]), 2),
        })
    return rows


# --------------------------------------------------------------------------- #
# Fleet composition
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShapeSpec:
    """``count`` chips of one shape.

    ``preset`` names a :data:`SHAPE_PRESETS` entry; ``overrides`` (flat
    :class:`HyGCNConfig` field -> value) lets a spec tweak a preset, in
    which case ``name`` should distinguish the tweaked shape (it defaults
    to the preset name and keys the scorer's learned rates).
    """

    preset: str
    count: int = 1
    name: Optional[str] = None
    overrides: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        if self.preset not in SHAPE_PRESETS:
            raise ValueError(f"unknown chip-shape preset {self.preset!r}; "
                             f"choose from {sorted(SHAPE_PRESETS)}")
        if self.count < 1:
            raise ValueError(f"shape {self.preset!r}: count must be >= 1, "
                             f"got {self.count}")
        if self.overrides:
            valid = {f.name for f in fields(HyGCNConfig)} - {"hbm", "energy"}
            unknown = set(self.overrides) - valid
            if unknown:
                raise ValueError(
                    f"shape {self.shape_name!r}: unknown HyGCNConfig override "
                    f"keys {sorted(unknown)}; valid keys are {sorted(valid)} "
                    f"(nested hbm/energy configs cannot be overridden here)")

    @property
    def shape_name(self) -> str:
        return self.name if self.name else self.preset

    def build_hw(self) -> HyGCNConfig:
        hw = SHAPE_PRESETS[self.preset]
        if self.overrides:
            hw = hw.with_overrides(**dict(self.overrides))
        return hw


@dataclass(frozen=True)
class FleetSpec:
    """The shape roster of one heterogeneous fleet.

    Chips are laid out in spec order (all of entry 0, then entry 1, ...),
    so chip ids map deterministically onto shapes.  A single-entry
    ``balanced`` spec is behaviourally identical to a homogeneous fleet of
    the same size (the bit-for-bit test in ``tests/serving/test_hetero.py``
    pins this).
    """

    shapes: Tuple[ShapeSpec, ...]

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError("fleet spec must name at least one shape entry")
        names = [s.shape_name for s in self.shapes]
        if len(set(names)) != len(names):
            raise ValueError(f"fleet spec shape names must be unique, got "
                             f"{names}; give tweaked presets a 'name'")

    @property
    def num_chips(self) -> int:
        return sum(s.count for s in self.shapes)

    def roster(self) -> List[Tuple[str, HyGCNConfig]]:
        """One ``(shape name, hw config)`` entry per chip, in chip-id order."""
        out: List[Tuple[str, HyGCNConfig]] = []
        for spec in self.shapes:
            hw = spec.build_hw()
            out.extend((spec.shape_name, hw) for _ in range(spec.count))
        return out

    def distinct_shapes(self) -> Dict[str, HyGCNConfig]:
        """Shape name -> hw config, in spec order (deterministic)."""
        return {s.shape_name: s.build_hw() for s in self.shapes}

    def to_dict(self) -> Dict[str, object]:
        return {"shapes": [
            {k: v for k, v in (
                ("preset", s.preset), ("count", s.count), ("name", s.name),
                ("overrides", dict(s.overrides) if s.overrides else None),
            ) if v is not None}
            for s in self.shapes]}


def load_fleet_spec(source: Union[str, Mapping, Sequence]) -> FleetSpec:
    """Parse a fleet spec from a JSON file path, a dict, or a list.

    The JSON shape is ``{"shapes": [{"preset": "agg_heavy", "count": 4},
    ...]}`` or a bare list of those entries; entry keys mirror
    :class:`ShapeSpec`.  Unknown keys and unknown presets are rejected with
    the valid alternatives listed, so a typo fails loudly.
    """
    if isinstance(source, str):
        try:
            with open(source) as handle:
                data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fleet spec {source!r} is not valid JSON: "
                             f"{exc}") from exc
    else:
        data = source
    if isinstance(data, Mapping):
        if "shapes" not in data:
            raise ValueError("fleet spec object must have a 'shapes' list, "
                             "e.g. {\"shapes\": [{\"preset\": \"agg_heavy\", "
                             "\"count\": 4}]}")
        data = data["shapes"]
    if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
        raise ValueError("fleet spec must be a list of shape entries "
                         "(or an object with a 'shapes' list)")
    known = {f.name for f in fields(ShapeSpec)}
    specs: List[ShapeSpec] = []
    for i, entry in enumerate(data):
        if not isinstance(entry, Mapping):
            raise ValueError(f"fleet spec shape #{i} is not an object")
        unknown = set(entry) - known
        if unknown:
            raise ValueError(f"fleet spec shape #{i} has unknown keys "
                             f"{sorted(unknown)}; valid keys are "
                             f"{sorted(known)}")
        if "preset" not in entry:
            raise ValueError(f"fleet spec shape #{i} is missing 'preset'; "
                             f"choose from {sorted(SHAPE_PRESETS)}")
        try:
            specs.append(ShapeSpec(**entry))
        except TypeError as exc:  # e.g. a string where a number belongs
            raise ValueError(f"fleet spec shape #{i} is malformed: "
                             f"{exc}") from exc
    return FleetSpec(shapes=tuple(specs))


def fleet_spec_for_mix(mix: str, num_chips: int) -> FleetSpec:
    """Resolve a :data:`SHAPE_MIXES` preset to a sized :class:`FleetSpec`.

    Fractions are apportioned largest-remainder-free: each shape gets
    ``floor(fraction * num_chips)`` chips and any remainder lands on one
    extra ``balanced`` chip, so a ``mixed`` fleet of 5 is 2+2+1.
    """
    if mix not in SHAPE_MIXES:
        raise ValueError(f"unknown shape mix {mix!r}; "
                         f"choose from {sorted(SHAPE_MIXES)}")
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    counts: Dict[str, int] = {}
    assigned = 0
    for shape, fraction in SHAPE_MIXES[mix]:
        count = int(fraction * num_chips)
        if count > 0:
            counts[shape] = counts.get(shape, 0) + count
            assigned += count
    if assigned < num_chips:
        counts["balanced"] = counts.get("balanced", 0) + (num_chips - assigned)
    return FleetSpec(shapes=tuple(ShapeSpec(preset=name, count=count)
                                  for name, count in counts.items()))


# --------------------------------------------------------------------------- #
# Batch profiles
# --------------------------------------------------------------------------- #
#: Tier edges of the aggregation/combination intensity ratio: below the
#: first edge a batch is combination-stream/MAC bound per neighbourhood
#: vertex ("comb"), above the second its cost is dominated by irregular
#: neighbourhood streaming ("agg").
_RATIO_TIERS = (0.01, 0.1)
#: Overlap tier edge: above this the fused graph is mostly shared work.
_OVERLAP_TIER = 0.5


@dataclass(frozen=True)
class BatchProfile:
    """Cheap summary of one batch's demand, used to pick a chip shape.

    All fields are *estimates* from the sampler's memoised
    :meth:`~repro.serving.sampler.SubgraphSampler.fused_size` -- dictionary
    lookups, no graph construction -- so profiling a batch costs
    microseconds of host time and is bit-for-bit deterministic under the
    sampler seed.
    """

    est_fused_vertices: int
    est_naive_vertices: int
    batch_size: int
    feature_length: int

    @property
    def overlap_est(self) -> float:
        """Estimated fused-dedup ratio (``1 - fused/naive``)."""
        if self.est_naive_vertices <= 0:
            return 0.0
        return 1.0 - self.est_fused_vertices / self.est_naive_vertices

    @property
    def neighbourhood_per_request(self) -> float:
        """Distinct fused neighbourhood vertices each member request adds."""
        if self.batch_size <= 0:
            return 0.0
        return self.est_fused_vertices / self.batch_size

    @property
    def agg_comb_ratio(self) -> float:
        """Irregular-vs-regular intensity: neighbourhood breadth per unit of
        feature length.

        High values mean wide/deep sampled neighbourhoods over short
        features (the per-vertex MVM and feature-streaming work is small
        next to the neighbourhood fan-in); low values mean shallow
        neighbourhoods over long features (weight/feature streaming and
        MACs dominate).  Dimensionless; only the tier it lands in matters.
        """
        return self.neighbourhood_per_request / max(1, self.feature_length)

    @property
    def bucket(self) -> str:
        """Discretised profile: ``{comb,mixed,agg}`` tier x overlap tier.

        Six buckets total -- coarse on purpose, so per-(shape, bucket)
        rates warm up after a handful of batches instead of fragmenting
        across a fine grid.
        """
        ratio = self.agg_comb_ratio
        if ratio < _RATIO_TIERS[0]:
            phase = "comb"
        elif ratio < _RATIO_TIERS[1]:
            phase = "mixed"
        else:
            phase = "agg"
        overlap = "hi" if self.overlap_est >= _OVERLAP_TIER else "lo"
        return f"{phase}|ov-{overlap}"


def make_profile_fn(sampler, feature_length: int):
    """``batch -> BatchProfile`` bound to ``sampler``.

    Honours per-request degrade overrides (a degraded request is profiled
    at the shape it will actually sample), exactly like the service-time
    model does.  Shared by the single-tenant fleet and every tenant
    runtime.
    """
    def profile(batch) -> BatchProfile:
        fused, naive = sampler.fused_size(
            (r.target_vertex, r.degrade_hops, r.degrade_fanout)
            for r in batch.requests)
        return BatchProfile(est_fused_vertices=fused,
                            est_naive_vertices=naive,
                            batch_size=batch.size,
                            feature_length=feature_length)
    return profile


# --------------------------------------------------------------------------- #
# Shape scoring
# --------------------------------------------------------------------------- #
class ShapeScorer:
    """EWMA of measured service seconds per fused vertex, per (shape, bucket).

    ``seed`` primes a key from the per-shape probe batch (the existing
    probe machinery, run once per distinct shape); ``observe`` folds in
    every measured batch service.  A ``(shape, bucket)`` with neither is
    *cold* (:meth:`rate` returns ``None``) and the dispatcher falls back to
    least-loaded for that batch -- a batch served under the fallback still
    feeds ``observe``, so buckets warm up from real traffic.

    The scorer also counts how often each bucket was demanded
    (:meth:`note_demand`), which is the demand signal the autoscaler's
    :class:`ShapeChooser` keys its shape decisions on.  Deterministic: all
    state is folded in event order and ties break lexicographically.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._rates: Dict[Tuple[str, str], float] = {}
        self._demand: Dict[str, int] = {}

    def seed(self, shape: str, bucket: str, rate_s_per_vertex: float) -> None:
        """Prime ``(shape, bucket)`` with a probe-measured rate (no-op if a
        rate is already known -- observations must never be clobbered)."""
        self._rates.setdefault((shape, bucket), float(rate_s_per_vertex))

    def observe(self, shape: str, bucket: str,
                rate_s_per_vertex: float) -> None:
        """Fold one measured batch rate into the ``(shape, bucket)`` EWMA."""
        key = (shape, bucket)
        old = self._rates.get(key)
        if old is None:
            self._rates[key] = float(rate_s_per_vertex)
        else:
            self._rates[key] = self.alpha * float(rate_s_per_vertex) \
                + (1 - self.alpha) * old

    def note_demand(self, bucket: str) -> None:
        """Count one dispatched batch against ``bucket`` (demand signal)."""
        self._demand[bucket] = self._demand.get(bucket, 0) + 1

    def rate(self, shape: str, bucket: str) -> Optional[float]:
        """Learned seconds per fused vertex, or ``None`` while cold."""
        return self._rates.get((shape, bucket))

    def rate_or_default(self, shape: str, bucket: str) -> float:
        """Rate with a cold fallback: the mean of the shape's known rates
        (0.0 if the shape is entirely cold).  Used only for backlog
        estimation, never to decide warm-vs-cold routing."""
        rate = self._rates.get((shape, bucket))
        if rate is not None:
            return rate
        known = [r for (s, _), r in self._rates.items() if s == shape]
        return sum(known) / len(known) if known else 0.0

    def warm(self, shapes: Sequence[str], bucket: str) -> bool:
        """True when every shape in ``shapes`` has a rate for ``bucket``."""
        return all((s, bucket) in self._rates for s in shapes)

    def dominant_bucket(self) -> Optional[str]:
        """The most-demanded bucket so far (ties break lexicographically)."""
        if not self._demand:
            return None
        return min(self._demand, key=lambda b: (-self._demand[b], b))

    def snapshot(self) -> Dict[str, float]:
        """``"shape|bucket" -> rate`` view for reports (sorted, stable)."""
        return {f"{shape}|{bucket}": rate
                for (shape, bucket), rate in sorted(self._rates.items())}


def account_batch_service(scorer: ShapeScorer, stats, batch, profile_fn,
                          chip_shape: str, service_s: float,
                          active_shapes, note_demand: bool) -> None:
    """Fold one measured batch service into the shape books.

    The single- and multi-tenant event loops both call this right after
    simulating a batch's service time, so the bookkeeping cannot drift
    between them: stamp the batch's profile if missing, count demand
    (``note_demand=True`` under shape-*oblivious* dispatch — the
    shape-aware dispatcher already counted it at selection time), charge
    ``stats.misdispatch_s`` with the time lost versus the oracle-best
    shape among ``active_shapes`` (priced from the rates the dispatcher
    had *before* this observation), then feed the measured rate into the
    scorer's EWMA.  ``stats`` is a
    :class:`~repro.serving.stats.HeteroStats` (duck-typed).
    """
    if batch.profile is None:
        batch.profile = profile_fn(batch)
    bucket = batch.profile.bucket
    if note_demand:
        scorer.note_demand(bucket)
    fused = max(batch.fused_vertices, 1)
    oracle_rates = [r for r in (scorer.rate(shape, bucket)
                                for shape in sorted(active_shapes))
                    if r is not None]
    if oracle_rates:
        stats.misdispatch_s += max(0.0, service_s - min(oracle_rates) * fused)
    scorer.observe(chip_shape, bucket, service_s / fused)


# --------------------------------------------------------------------------- #
# Autoscaling shape choice
# --------------------------------------------------------------------------- #
class ShapeChooser:
    """Decides *which* shape an elastic heterogeneous fleet adds or retires.

    ``policy`` is one of :data:`SCALE_SHAPE_POLICIES`:

    * ``cheapest-adequate`` -- among the spec's shapes, take the lowest
      :func:`shape_cost` shape whose learned rate for the dominant demand
      bucket is within ``adequacy`` of the best shape's rate.  While any
      candidate is cold the chooser cannot judge adequacy and simply takes
      the cheapest shape.
    * ``bottleneck-phase`` -- take the shape with the best (lowest) rate
      for the dominant demand bucket, whatever it costs; cold candidates
      fall back to the cheapest shape.

    Retirement mirrors addition: :meth:`retire_victim` prefers draining a
    chip of the *worst*-rated shape for the dominant bucket (the shape the
    current demand needs least), tie-broken on the emptiest queue so the
    least work gets stranded.  ``scorers`` is one or more
    :class:`ShapeScorer` views of demand -- the single-tenant loop passes
    its one scorer, the multi-tenant loop passes every tenant's (rates are
    averaged over the scorers that know the shape).
    """

    def __init__(self, policy: str, shapes: Mapping[str, HyGCNConfig],
                 scorers: Sequence[ShapeScorer] = (),
                 adequacy: float = 1.5):
        if policy not in SCALE_SHAPE_POLICIES:
            raise ValueError(f"unknown scale-shape policy {policy!r}; "
                             f"choose from {SCALE_SHAPE_POLICIES}")
        if not shapes:
            raise ValueError("ShapeChooser needs at least one shape")
        if adequacy < 1.0:
            raise ValueError("adequacy must be >= 1")
        self.policy = policy
        self.shapes = dict(shapes)
        self.scorers = list(scorers)
        self.adequacy = float(adequacy)

    # ------------------------------------------------------------------ #
    def _demand_rates(self) -> Dict[str, float]:
        """Shape -> mean learned rate for the dominant demand bucket(s).

        Each scorer votes with its own dominant bucket (per-tenant demand
        differs); a shape's rate is the mean over the scorers that know it.
        Shapes no scorer knows are absent (cold).
        """
        votes: Dict[str, List[float]] = {}
        for scorer in self.scorers:
            bucket = scorer.dominant_bucket()
            if bucket is None:
                continue
            for shape in self.shapes:
                rate = scorer.rate(shape, bucket)
                if rate is not None:
                    votes.setdefault(shape, []).append(rate)
        return {shape: sum(r) / len(r) for shape, r in votes.items()}

    def _cheapest(self) -> str:
        return min(self.shapes,
                   key=lambda s: (shape_cost(self.shapes[s]), s))

    def shape_to_add(self) -> str:
        """The shape the next scale-up should commission."""
        rates = self._demand_rates()
        if len(rates) < len(self.shapes):
            # some candidate is cold for the demand: cost is the only
            # defensible signal
            return self._cheapest()
        if self.policy == "bottleneck-phase":
            return min(self.shapes, key=lambda s: (rates[s], s))
        best = min(rates.values())
        adequate = [s for s in self.shapes if rates[s] <= self.adequacy * best]
        return min(adequate, key=lambda s: (shape_cost(self.shapes[s]), s))

    def retire_victim(self, actives: Sequence) -> object:
        """The active chip a scale-down should drain first.

        ``actives`` are duck-typed chips (``shape``, ``outstanding_requests``,
        ``chip_id``).  Falls back to pure emptiest-queue while rates are
        cold.
        """
        rates = self._demand_rates()

        def key(chip):
            # unknown-rate shapes sort *before* known ones (-inf surplus):
            # retiring a shape we cannot judge is safer than retiring the
            # one shape the demand provably needs
            rate = rates.get(chip.shape)
            suited = -rate if rate is not None else float("-inf")
            return (suited, chip.outstanding_requests, -chip.chip_id)

        return min(actives, key=key)
