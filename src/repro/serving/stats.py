"""Serving-level metrics: latency percentiles, throughput, SLO accounting.

The per-request records produced by the fleet's event loop are aggregated into
a :class:`ServingReport`, the serving-side analogue of
:class:`~repro.core.stats.SimulationReport`: tail-latency percentiles,
sustained throughput, per-chip utilisation, queue pressure and SLO-violation
counts, plus table helpers for the CLI / benchmark harness.

For multi-tenant runs (:mod:`repro.serving.tenancy`) the records carry a
``tenant`` tag and roll up into a :class:`MultiTenantReport`: one
:class:`ServingReport` slice per tenant plus the isolation metrics the fleet
owes its tenants -- weighted-fair-queueing service shares (measured while all
tenants were contending) against the configured weights, per-tenant SLO
violation rates, and cross-tenant p99 inflation versus each tenant running
alone on the same fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .cache import CacheStats

__all__ = ["percentile", "chip_utilization_rows", "RequestRecord",
           "ChipStats", "ServingReport", "MultiTenantReport"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation); 0.0 for an empty input."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed request.

    Cache hits never touch a chip: their ``chip_id``/``batch_id`` are -1 and
    dispatch/start coincide with completion.  ``tenant`` is empty for
    single-tenant serving.
    """

    request_id: int
    target_vertex: int
    arrival_time_s: float
    dispatch_time_s: float
    service_start_s: float
    completion_time_s: float
    cache_hit: bool = False
    chip_id: int = -1
    batch_id: int = -1
    tenant: str = ""

    @property
    def latency_s(self) -> float:
        return self.completion_time_s - self.arrival_time_s

    @property
    def batching_wait_s(self) -> float:
        """Time spent waiting for the batch to form."""
        return self.dispatch_time_s - self.arrival_time_s

    @property
    def queue_wait_s(self) -> float:
        """Time the formed batch waited in a chip queue."""
        return self.service_start_s - self.dispatch_time_s


@dataclass
class ChipStats:
    """Aggregate accounting of one simulated accelerator instance."""

    chip_id: int
    busy_s: float = 0.0
    batches_served: int = 0
    requests_served: int = 0
    vertices_simulated: int = 0
    feature_lookups: int = 0
    feature_hits: int = 0

    @property
    def feature_reuse_rate(self) -> float:
        """Fraction of batch vertices already resident in the chip's feature cache."""
        return self.feature_hits / self.feature_lookups if self.feature_lookups else 0.0

    def utilization(self, makespan_s: float) -> float:
        """Busy fraction of the chip over the whole serving window."""
        return min(1.0, self.busy_s / makespan_s) if makespan_s > 0 else 0.0


def chip_utilization_rows(chips: Sequence["ChipStats"],
                          span_s: float) -> List[Dict[str, object]]:
    """One table row per chip: load share, busy time, utilisation, reuse.

    Shared by the single-tenant and multi-tenant reports so the two views
    cannot drift apart.
    """
    return [
        {
            "chip": c.chip_id,
            "batches": c.batches_served,
            "requests": c.requests_served,
            "vertices": c.vertices_simulated,
            "busy_ms": round(c.busy_s * 1e3, 4),
            "utilization_pct": round(100.0 * c.utilization(span_s), 2),
            "feature_reuse_pct": round(100.0 * c.feature_reuse_rate, 2),
        }
        for c in chips
    ]


@dataclass
class ServingReport:
    """Everything the serving evaluation reports for one traffic run."""

    model_name: str
    dataset_name: str
    num_chips: int
    batch_policy: str
    dispatch_policy: str
    rate_rps: float
    slo_s: float
    records: List[RequestRecord] = field(default_factory=list)
    chips: List[ChipStats] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)
    avg_in_flight: float = 0.0
    max_queue_depth: int = 0
    _latencies: np.ndarray = field(default=None, init=False, repr=False,
                                   compare=False)

    # ------------------------------------------------------------------ #
    # Derived latency / throughput metrics
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request latencies; computed once per records length (summary(),
        the percentile properties and the SLO counters all re-read this)."""
        if self._latencies is None or self._latencies.size != len(self.records):
            self._latencies = np.asarray([r.latency_s for r in self.records],
                                         dtype=np.float64)
        return self._latencies

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        if not self.records:
            return 0.0
        start = min(r.arrival_time_s for r in self.records)
        end = max(r.completion_time_s for r in self.records)
        return end - start

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    @property
    def p50_latency_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p95_latency_s(self) -> float:
        return percentile(self.latencies_s, 95)

    @property
    def p99_latency_s(self) -> float:
        return percentile(self.latencies_s, 99)

    @property
    def mean_latency_s(self) -> float:
        lats = self.latencies_s
        return float(lats.mean()) if lats.size else 0.0

    @property
    def max_latency_s(self) -> float:
        lats = self.latencies_s
        return float(lats.max()) if lats.size else 0.0

    # ------------------------------------------------------------------ #
    # SLO accounting
    # ------------------------------------------------------------------ #
    @property
    def slo_violations(self) -> int:
        return int(np.count_nonzero(self.latencies_s > self.slo_s))

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / self.completed if self.completed else 0.0

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """One-row overview (latencies in milliseconds of simulated time)."""
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "chips": self.num_chips,
            "batching": self.batch_policy,
            "dispatch": self.dispatch_policy,
            "completed": self.completed,
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_latency_s * 1e3, 4),
            "p95_ms": round(self.p95_latency_s * 1e3, 4),
            "p99_ms": round(self.p99_latency_s * 1e3, 4),
            "slo_violation_pct": round(100.0 * self.slo_violation_rate, 2),
            "cache_hit_rate_pct": round(100.0 * self.cache.hit_rate, 2),
        }

    def per_chip_table(self) -> List[Dict[str, object]]:
        """One row per chip: load share, busy time and utilisation."""
        return chip_utilization_rows(self.chips, self.makespan_s)

    def latency_breakdown(self) -> Dict[str, float]:
        """Mean per-request time split: batching wait, queue wait, service."""
        misses = [r for r in self.records if not r.cache_hit]
        if not misses:
            return {"batching_wait_ms": 0.0, "queue_wait_ms": 0.0, "service_ms": 0.0}
        batching = float(np.mean([r.batching_wait_s for r in misses]))
        queue = float(np.mean([r.queue_wait_s for r in misses]))
        service = float(np.mean([r.completion_time_s - r.service_start_s
                                 for r in misses]))
        return {
            "batching_wait_ms": round(batching * 1e3, 4),
            "queue_wait_ms": round(queue * 1e3, 4),
            "service_ms": round(service * 1e3, 4),
        }


@dataclass
class MultiTenantReport:
    """Per-tenant slices plus the fairness / isolation metrics of one run.

    ``reports`` maps each tenant to a :class:`ServingReport` restricted to its
    own requests (so all the latency / SLO machinery applies per tenant).

    Fairness accounting distinguishes two views of chip time:

    * ``busy_s``           -- total simulated chip-seconds each tenant received;
    * ``contended_busy_s`` -- chip-seconds received from batches dispatched
      while *every* tenant still had work outstanding.  WFQ only promises
      weight-proportional service during contention (an idle tenant's unused
      share is redistributed), so fairness is judged on this view.

    ``solo`` holds the same tenants' reports from isolation baseline runs
    (each tenant alone on an identical fleet, identical traffic), which feed
    the cross-tenant p99-inflation metric.
    """

    num_chips: int
    tenants: List[str]
    weights: Dict[str, float]
    reports: Dict[str, "ServingReport"]
    busy_s: Dict[str, float] = field(default_factory=dict)
    contended_busy_s: Dict[str, float] = field(default_factory=dict)
    chips: List[ChipStats] = field(default_factory=list)
    solo: Dict[str, "ServingReport"] = field(default_factory=dict)
    scheduler: str = "wfq-drr"
    avg_in_flight: float = 0.0
    max_backlog_batches: int = 0

    # ------------------------------------------------------------------ #
    # Aggregates over all tenants
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.reports.values())

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion across every tenant."""
        records = [r for rep in self.reports.values() for r in rep.records]
        if not records:
            return 0.0
        return max(r.completion_time_s for r in records) \
            - min(r.arrival_time_s for r in records)

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    # ------------------------------------------------------------------ #
    # Fairness: configured weight shares vs. measured service shares
    # ------------------------------------------------------------------ #
    def weight_share(self, tenant: str) -> float:
        total = sum(self.weights.values())
        return self.weights[tenant] / total if total > 0 else 0.0

    def service_share(self, tenant: str, contended: bool = True) -> float:
        """Fraction of (contended) chip-seconds this tenant received."""
        pool = self.contended_busy_s if contended else self.busy_s
        total = sum(pool.values())
        return pool.get(tenant, 0.0) / total if total > 0 else 0.0

    def fairness_table(self) -> List[Dict[str, object]]:
        """One row per tenant: configured vs. measured service share."""
        rows = []
        for name in self.tenants:
            want = self.weight_share(name)
            got = self.service_share(name, contended=True)
            rows.append({
                "tenant": name,
                "weight": self.weights[name],
                "weight_share_pct": round(100.0 * want, 2),
                "contended_share_pct": round(100.0 * got, 2),
                "total_share_pct": round(
                    100.0 * self.service_share(name, contended=False), 2),
                "share_error_pct": round(100.0 * abs(got - want), 2),
            })
        return rows

    # ------------------------------------------------------------------ #
    # Isolation: shared-fleet tails vs. running-alone tails
    # ------------------------------------------------------------------ #
    def p99_inflation(self, tenant: str) -> Optional[float]:
        """Shared-fleet p99 over run-alone p99 (``None`` without a baseline)."""
        solo = self.solo.get(tenant)
        if solo is None or solo.p99_latency_s <= 0:
            return None
        return self.reports[tenant].p99_latency_s / solo.p99_latency_s

    def isolation_table(self) -> List[Dict[str, object]]:
        """One row per tenant: shared vs. solo tail latency and SLO rates."""
        rows = []
        for name in self.tenants:
            shared = self.reports[name]
            solo = self.solo.get(name)
            inflation = self.p99_inflation(name)
            rows.append({
                "tenant": name,
                "shared_p99_ms": round(shared.p99_latency_s * 1e3, 4),
                "solo_p99_ms": round(solo.p99_latency_s * 1e3, 4)
                if solo else None,
                "p99_inflation_x": round(inflation, 3)
                if inflation is not None else None,
                "shared_slo_violation_pct": round(
                    100.0 * shared.slo_violation_rate, 2),
                "solo_slo_violation_pct": round(
                    100.0 * solo.slo_violation_rate, 2) if solo else None,
            })
        return rows

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def summary_table(self) -> List[Dict[str, object]]:
        """One row per tenant: traffic, latency percentiles, SLO, cache."""
        rows = []
        for name in self.tenants:
            rep = self.reports[name]
            rows.append({
                "tenant": name,
                "model": rep.model_name,
                "dataset": rep.dataset_name,
                "weight": self.weights[name],
                "rate_rps": round(rep.rate_rps, 1),
                "completed": rep.completed,
                "p50_ms": round(rep.p50_latency_s * 1e3, 4),
                "p95_ms": round(rep.p95_latency_s * 1e3, 4),
                "p99_ms": round(rep.p99_latency_s * 1e3, 4),
                "slo_ms": round(rep.slo_s * 1e3, 4),
                "slo_violation_pct": round(100.0 * rep.slo_violation_rate, 2),
                "cache_hit_rate_pct": round(100.0 * rep.cache.hit_rate, 2),
            })
        return rows

    def per_chip_table(self) -> List[Dict[str, object]]:
        """Fleet-level chip accounting over the whole multi-tenant run."""
        return chip_utilization_rows(self.chips, self.makespan_s)
