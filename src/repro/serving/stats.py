"""Serving-level metrics: latency percentiles, throughput, SLO accounting.

The per-request records produced by the fleet's event loop are aggregated into
a :class:`ServingReport`, the serving-side analogue of
:class:`~repro.core.stats.SimulationReport`: tail-latency percentiles,
sustained throughput, per-chip utilisation, queue pressure and SLO-violation
counts, plus table helpers for the CLI / benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .cache import CacheStats

__all__ = ["percentile", "RequestRecord", "ChipStats", "ServingReport"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation); 0.0 for an empty input."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed request.

    Cache hits never touch a chip: their ``chip_id``/``batch_id`` are -1 and
    dispatch/start coincide with completion.
    """

    request_id: int
    target_vertex: int
    arrival_time_s: float
    dispatch_time_s: float
    service_start_s: float
    completion_time_s: float
    cache_hit: bool = False
    chip_id: int = -1
    batch_id: int = -1

    @property
    def latency_s(self) -> float:
        return self.completion_time_s - self.arrival_time_s

    @property
    def batching_wait_s(self) -> float:
        """Time spent waiting for the batch to form."""
        return self.dispatch_time_s - self.arrival_time_s

    @property
    def queue_wait_s(self) -> float:
        """Time the formed batch waited in a chip queue."""
        return self.service_start_s - self.dispatch_time_s


@dataclass
class ChipStats:
    """Aggregate accounting of one simulated accelerator instance."""

    chip_id: int
    busy_s: float = 0.0
    batches_served: int = 0
    requests_served: int = 0
    vertices_simulated: int = 0
    feature_lookups: int = 0
    feature_hits: int = 0

    @property
    def feature_reuse_rate(self) -> float:
        """Fraction of batch vertices already resident in the chip's feature cache."""
        return self.feature_hits / self.feature_lookups if self.feature_lookups else 0.0

    def utilization(self, makespan_s: float) -> float:
        """Busy fraction of the chip over the whole serving window."""
        return min(1.0, self.busy_s / makespan_s) if makespan_s > 0 else 0.0


@dataclass
class ServingReport:
    """Everything the serving evaluation reports for one traffic run."""

    model_name: str
    dataset_name: str
    num_chips: int
    batch_policy: str
    dispatch_policy: str
    rate_rps: float
    slo_s: float
    records: List[RequestRecord] = field(default_factory=list)
    chips: List[ChipStats] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)
    avg_in_flight: float = 0.0
    max_queue_depth: int = 0
    _latencies: np.ndarray = field(default=None, init=False, repr=False,
                                   compare=False)

    # ------------------------------------------------------------------ #
    # Derived latency / throughput metrics
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request latencies; computed once per records length (summary(),
        the percentile properties and the SLO counters all re-read this)."""
        if self._latencies is None or self._latencies.size != len(self.records):
            self._latencies = np.asarray([r.latency_s for r in self.records],
                                         dtype=np.float64)
        return self._latencies

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        if not self.records:
            return 0.0
        start = min(r.arrival_time_s for r in self.records)
        end = max(r.completion_time_s for r in self.records)
        return end - start

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    @property
    def p50_latency_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p95_latency_s(self) -> float:
        return percentile(self.latencies_s, 95)

    @property
    def p99_latency_s(self) -> float:
        return percentile(self.latencies_s, 99)

    @property
    def mean_latency_s(self) -> float:
        lats = self.latencies_s
        return float(lats.mean()) if lats.size else 0.0

    @property
    def max_latency_s(self) -> float:
        lats = self.latencies_s
        return float(lats.max()) if lats.size else 0.0

    # ------------------------------------------------------------------ #
    # SLO accounting
    # ------------------------------------------------------------------ #
    @property
    def slo_violations(self) -> int:
        return int(np.count_nonzero(self.latencies_s > self.slo_s))

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / self.completed if self.completed else 0.0

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """One-row overview (latencies in milliseconds of simulated time)."""
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "chips": self.num_chips,
            "batching": self.batch_policy,
            "dispatch": self.dispatch_policy,
            "completed": self.completed,
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_latency_s * 1e3, 4),
            "p95_ms": round(self.p95_latency_s * 1e3, 4),
            "p99_ms": round(self.p99_latency_s * 1e3, 4),
            "slo_violation_pct": round(100.0 * self.slo_violation_rate, 2),
            "cache_hit_rate_pct": round(100.0 * self.cache.hit_rate, 2),
        }

    def per_chip_table(self) -> List[Dict[str, object]]:
        """One row per chip: load share, busy time and utilisation."""
        span = self.makespan_s
        return [
            {
                "chip": c.chip_id,
                "batches": c.batches_served,
                "requests": c.requests_served,
                "vertices": c.vertices_simulated,
                "busy_ms": round(c.busy_s * 1e3, 4),
                "utilization_pct": round(100.0 * c.utilization(span), 2),
                "feature_reuse_pct": round(100.0 * c.feature_reuse_rate, 2),
            }
            for c in self.chips
        ]

    def latency_breakdown(self) -> Dict[str, float]:
        """Mean per-request time split: batching wait, queue wait, service."""
        misses = [r for r in self.records if not r.cache_hit]
        if not misses:
            return {"batching_wait_ms": 0.0, "queue_wait_ms": 0.0, "service_ms": 0.0}
        batching = float(np.mean([r.batching_wait_s for r in misses]))
        queue = float(np.mean([r.queue_wait_s for r in misses]))
        service = float(np.mean([r.completion_time_s - r.service_start_s
                                 for r in misses]))
        return {
            "batching_wait_ms": round(batching * 1e3, 4),
            "queue_wait_ms": round(queue * 1e3, 4),
            "service_ms": round(service * 1e3, 4),
        }
