"""Serving-level metrics: latency percentiles, throughput, SLO accounting.

The per-request records produced by the fleet's event loop are aggregated into
a :class:`ServingReport`, the serving-side analogue of
:class:`~repro.core.stats.SimulationReport`: tail-latency percentiles,
sustained throughput, per-chip utilisation, queue pressure and SLO-violation
counts, plus table helpers for the CLI / benchmark harness.

For multi-tenant runs (:mod:`repro.serving.tenancy`) the records carry a
``tenant`` tag and roll up into a :class:`MultiTenantReport`: one
:class:`ServingReport` slice per tenant plus the isolation metrics the fleet
owes its tenants -- weighted-fair-queueing service shares (measured while all
tenants were contending) against the configured weights, per-tenant SLO
violation rates, and cross-tenant p99 inflation versus each tenant running
alone on the same fleet.

Elastic runs (:mod:`repro.serving.control`) additionally attach a
:class:`ControlStats` block: the autoscaling timeline (every add / warm-up /
drain / retire event plus a per-interval observation trace), the provisioned
chip-seconds the run consumed (the cost side of the
chip-seconds-vs-violations-avoided trade), and per-tenant admission
accounting (admitted / shed / degraded-by-level breakdowns).

Batch-formation accounting lives in :class:`BatchingStats` (one per report,
per tenant in multi-tenant runs): batches formed, the fused vs. naive
vertex totals behind the measured **overlap ratio** and dedup savings, and
the late-join counters of continuous batching (see
:mod:`repro.serving.batching` and ``docs/batching.md``).

Both report classes serialize to plain JSON-compatible dicts via
``to_dict()``, which is what ``python -m repro serve --json`` emits so that
benchmark harnesses never scrape the human-formatted tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .cache import CacheStats

__all__ = ["percentile", "chip_utilization_rows", "shape_utilization_rows",
           "RequestRecord", "ChipStats", "ServingReport", "MultiTenantReport",
           "ScaleEvent", "ControlSample", "AdmissionStats", "ControlStats",
           "BatchingStats", "HeteroStats", "ShardingStats",
           "ConsistencyStats"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation); 0.0 for an empty input."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed request.

    Cache hits never touch a chip: their ``chip_id``/``batch_id`` are -1 and
    dispatch/start coincide with completion.  ``tenant`` is empty for
    single-tenant serving.
    """

    request_id: int
    target_vertex: int
    arrival_time_s: float
    dispatch_time_s: float
    service_start_s: float
    completion_time_s: float
    cache_hit: bool = False
    chip_id: int = -1
    batch_id: int = -1
    tenant: str = ""
    #: > 0 when the control plane served this request at reduced sampling
    #: fidelity (see :mod:`repro.serving.control`); 0 is full fidelity.
    degrade_level: int = 0

    @property
    def latency_s(self) -> float:
        return self.completion_time_s - self.arrival_time_s

    @property
    def batching_wait_s(self) -> float:
        """Time spent waiting for the batch to form."""
        return self.dispatch_time_s - self.arrival_time_s

    @property
    def queue_wait_s(self) -> float:
        """Time the formed batch waited in a chip queue."""
        return self.service_start_s - self.dispatch_time_s


@dataclass
class ChipStats:
    """Aggregate accounting of one simulated accelerator instance.

    ``provisioned_s`` is filled by elastic runs: the chip-seconds this chip
    was held (from commissioning through retirement or end of run, including
    warm-up during which it served nothing).  ``None`` means the chip existed
    for the whole run (every fixed-fleet chip).

    ``shape`` names the chip's hardware shape
    (:data:`~repro.serving.hetero.SHAPE_PRESETS`); homogeneous fleets run
    entirely on ``"balanced"`` chips.
    """

    chip_id: int
    shape: str = "balanced"
    busy_s: float = 0.0
    batches_served: int = 0
    requests_served: int = 0
    vertices_simulated: int = 0
    feature_lookups: int = 0
    feature_hits: int = 0
    provisioned_s: Optional[float] = None

    @property
    def feature_reuse_rate(self) -> float:
        """Fraction of batch vertices already resident in the chip's feature cache."""
        return self.feature_hits / self.feature_lookups if self.feature_lookups else 0.0

    def utilization(self, makespan_s: float) -> float:
        """Busy fraction of the chip over its provisioned window (the whole
        serving window for fixed-fleet chips)."""
        span = self.provisioned_s if self.provisioned_s is not None else makespan_s
        return min(1.0, self.busy_s / span) if span > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "chip_id": self.chip_id,
            "shape": self.shape,
            "busy_s": self.busy_s,
            "batches_served": self.batches_served,
            "requests_served": self.requests_served,
            "vertices_simulated": self.vertices_simulated,
            "feature_lookups": self.feature_lookups,
            "feature_hits": self.feature_hits,
            "provisioned_s": self.provisioned_s,
        }


def chip_utilization_rows(chips: Sequence["ChipStats"],
                          span_s: float) -> List[Dict[str, object]]:
    """One table row per chip: load share, busy time, utilisation, reuse.

    Shared by the single-tenant and multi-tenant reports so the two views
    cannot drift apart.  The ``shape`` column only appears on
    heterogeneous fleets, so homogeneous tables keep their layout.
    """
    hetero = len({c.shape for c in chips}) > 1
    rows = []
    for c in chips:
        row: Dict[str, object] = {"chip": c.chip_id}
        if hetero:
            row["shape"] = c.shape
        row.update({
            "batches": c.batches_served,
            "requests": c.requests_served,
            "vertices": c.vertices_simulated,
            "busy_ms": round(c.busy_s * 1e3, 4),
            "utilization_pct": round(100.0 * c.utilization(span_s), 2),
            "feature_reuse_pct": round(100.0 * c.feature_reuse_rate, 2),
        })
        rows.append(row)
    return rows


def shape_utilization_rows(chips: Sequence["ChipStats"],
                           span_s: float) -> List[Dict[str, object]]:
    """One table row per chip *shape*: roster size, load, service share.

    ``service_share_pct`` is the fraction of the fleet's total busy
    chip-seconds this shape absorbed; ``utilization_pct`` is its busy time
    over its provisioned time (chip count x span for fixed-fleet chips).
    Shared by both reports' ``shape_table()``.
    """
    by_shape: Dict[str, List[ChipStats]] = {}
    for c in chips:
        by_shape.setdefault(c.shape, []).append(c)
    total_busy = sum(c.busy_s for c in chips)
    rows = []
    for shape in sorted(by_shape):
        members = by_shape[shape]
        busy = sum(c.busy_s for c in members)
        provisioned = sum(c.provisioned_s if c.provisioned_s is not None
                          else span_s for c in members)
        rows.append({
            "shape": shape,
            "chips": len(members),
            "batches": sum(c.batches_served for c in members),
            "requests": sum(c.requests_served for c in members),
            "busy_ms": round(busy * 1e3, 4),
            "service_share_pct": round(100.0 * busy / total_busy, 2)
            if total_busy > 0 else 0.0,
            "utilization_pct": round(100.0 * busy / provisioned, 2)
            if provisioned > 0 else 0.0,
        })
    return rows


# --------------------------------------------------------------------------- #
# Batch-formation accounting (overlap-aware / continuous batching)
# --------------------------------------------------------------------------- #
@dataclass
class BatchingStats:
    """Aggregate batch-formation accounting of one serving run.

    ``naive_vertices`` sums every batched request's *standalone* sampled
    neighbourhood size (what an overlap-oblivious fleet would stream);
    ``fused_vertices`` sums the deduped fused-subgraph sizes the chips
    actually executed.  Their gap is the dedup saving, and
    ``overlap_ratio`` (``1 - fused/naive``) is the headline metric of the
    overlap-aware formation policies -- FIFO runs report it too (duplicate
    targets inside a batch dedup under every policy), which is what makes
    policy comparisons honest.  ``late_joins`` / ``late_join_rejects``
    count continuous-batching join attempts (always zero elsewhere).
    Cache-hit requests never reach a batch and are invisible here.
    """

    policy: str = "fifo"
    batches: int = 0
    batched_requests: int = 0
    fused_vertices: int = 0
    naive_vertices: int = 0
    late_joins: int = 0
    late_join_rejects: int = 0

    def observe_batch(self, batch) -> None:
        """Fold one served batch in (duck-typed serving ``Batch``)."""
        self.batches += 1
        self.batched_requests += batch.size
        self.fused_vertices += batch.fused_vertices
        self.naive_vertices += batch.naive_vertices
        self.late_joins += batch.late_joins

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def overlap_ratio(self) -> float:
        """Fraction of naive neighbourhood vertices the fusion eliminated."""
        if self.naive_vertices == 0:
            return 0.0
        return 1.0 - self.fused_vertices / self.naive_vertices

    @property
    def dedup_saved_vertices(self) -> int:
        return self.naive_vertices - self.fused_vertices

    def summary(self) -> Dict[str, object]:
        """One table row for the CLI's batch-formation section."""
        return {
            "policy": self.policy,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "overlap_ratio_pct": round(100.0 * self.overlap_ratio, 2),
            "dedup_saved_vertices": self.dedup_saved_vertices,
            "late_joins": self.late_joins,
            "late_join_rejects": self.late_join_rejects,
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_size": self.mean_batch_size,
            "fused_vertices": self.fused_vertices,
            "naive_vertices": self.naive_vertices,
            "overlap_ratio": self.overlap_ratio,
            "dedup_saved_vertices": self.dedup_saved_vertices,
            "late_joins": self.late_joins,
            "late_join_rejects": self.late_join_rejects,
        }


# --------------------------------------------------------------------------- #
# Sharded-execution accounting (multi-chip groups, repro.serving.sharding)
# --------------------------------------------------------------------------- #
@dataclass
class ShardingStats:
    """Aggregate sharded-execution accounting of one serving run.

    Attached to a report only when the fleet runs as a chip group
    (``FleetConfig.sharding`` armed -- see :mod:`repro.serving.sharding`
    and ``docs/sharding.md``).  The plan-derived fields (``edge_cut`` /
    ``num_edges`` / ``halo_vertices`` / ``size_imbalance``) are folded in
    once per shard plan via :meth:`fold_plan` -- multi-tenant runs fold one
    plan per tenant, so the edge-cut fraction is the traffic-blended cut
    over every partitioned dataset.

    The halo counters distinguish traffic *moved* (cache-missing ghost
    features paying DRAM + interconnect) from traffic *saved* (ghosts
    served from a warm halo cache); ``load_imbalance`` is the max-over-mean
    of per-shard busy seconds, the measured analogue of the plan's static
    ``size_imbalance``.  The latency percentiles are stamped from the
    report's records at finalisation so the sharded tail is readable from
    this one block.
    """

    num_shards: int
    partitioner: str
    edge_cut: int = 0
    num_edges: int = 0
    halo_vertices: int = 0
    size_imbalance: float = 0.0
    sharded_batches: int = 0
    sub_batches: int = 0
    halo_lookups: int = 0
    halo_hits: int = 0
    halo_bytes_moved: float = 0.0
    halo_bytes_saved: float = 0.0
    exchange_s: float = 0.0
    gather_s: float = 0.0
    shard_busy_s: List[float] = field(default_factory=list)
    shard_requests: List[int] = field(default_factory=list)
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0

    def fold_plan(self, plan) -> None:
        """Fold one :class:`~repro.graphs.partition.ShardPlan`'s static
        stats in (idempotence is the caller's concern: once per plan)."""
        self.edge_cut += plan.edge_cut
        self.num_edges += plan.num_edges
        self.halo_vertices += plan.halo_vertices
        self.size_imbalance = max(self.size_imbalance, plan.size_imbalance)

    @property
    def edge_cut_fraction(self) -> float:
        """Fraction of directed edges crossing shard boundaries."""
        return self.edge_cut / self.num_edges if self.num_edges else 0.0

    @property
    def halo_hit_rate(self) -> float:
        """Fraction of ghost-feature lookups served by the halo caches."""
        return self.halo_hits / self.halo_lookups if self.halo_lookups else 0.0

    @property
    def load_imbalance(self) -> float:
        """Busiest shard's sub-batch seconds over the mean (1.0 = balanced)."""
        busy = [b for b in self.shard_busy_s]
        if not busy or sum(busy) == 0:
            return 0.0
        return max(busy) / (sum(busy) / len(busy))

    def summary(self) -> Dict[str, object]:
        """One table row for the CLI's sharded-execution section."""
        return {
            "partitioner": self.partitioner,
            "shards": self.num_shards,
            "edge_cut_pct": round(100.0 * self.edge_cut_fraction, 2),
            "halo_moved_kb": round(self.halo_bytes_moved / 1024.0, 1),
            "halo_saved_kb": round(self.halo_bytes_saved / 1024.0, 1),
            "halo_hit_rate_pct": round(100.0 * self.halo_hit_rate, 2),
            "load_imbalance": round(self.load_imbalance, 3),
            "p50_ms": round(self.p50_s * 1e3, 4),
            "p95_ms": round(self.p95_s * 1e3, 4),
            "p99_ms": round(self.p99_s * 1e3, 4),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "partitioner": self.partitioner,
            "edge_cut": self.edge_cut,
            "num_edges": self.num_edges,
            "edge_cut_fraction": self.edge_cut_fraction,
            "halo_vertices": self.halo_vertices,
            "size_imbalance": self.size_imbalance,
            "sharded_batches": self.sharded_batches,
            "sub_batches": self.sub_batches,
            "halo_lookups": self.halo_lookups,
            "halo_hits": self.halo_hits,
            "halo_hit_rate": self.halo_hit_rate,
            "halo_bytes_moved": self.halo_bytes_moved,
            "halo_bytes_saved": self.halo_bytes_saved,
            "exchange_s": self.exchange_s,
            "gather_s": self.gather_s,
            "shard_busy_s": list(self.shard_busy_s),
            "shard_requests": list(self.shard_requests),
            "load_imbalance": self.load_imbalance,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }


# --------------------------------------------------------------------------- #
# Streaming-update accounting (mutating graphs, repro.serving.streaming)
# --------------------------------------------------------------------------- #
def _empty_invalidations() -> Dict[str, int]:
    return {"result": 0, "feature": 0, "halo": 0, "sample": 0,
            "signature": 0, "shard_plan": 0}


@dataclass
class ConsistencyStats:
    """Streaming-update and differential-consistency accounting of one run.

    Attached to a report only when the run served a mutating graph
    (``updates=`` armed -- see :mod:`repro.serving.streaming` and
    ``docs/streaming.md``); static runs carry no block, so their JSON
    exports stay byte-identical to pre-streaming builds.

    ``invalidations`` counts derived-state entries dropped per cache by the
    invalidation policy; the ``stale_*`` counters record served results
    whose cached derived state *disagreed with a fresh recomputation at
    service time* (only possible under ``--invalidation none``, whose whole
    point is to prove each invalidation path load-bearing).  Staleness is
    measured in both graph versions and simulated seconds;
    ``stale_beyond_budget`` counts violations older than the configured
    version budget -- the "no stale result beyond budget" contract is
    ``stale_beyond_budget == 0``.

    ``baseline_p99_s`` is filled by harnesses that also ran a static-graph
    baseline; ``p99_inflation`` then prices what invalidation churn cost
    the tail.
    """

    policy: str = "targeted"
    budget_versions: int = 0
    updates_offered: int = 0
    edge_updates: int = 0
    feature_updates: int = 0
    vertex_updates: int = 0
    noop_updates: int = 0
    final_version: int = 0
    compactions: int = 0
    invalidations: Dict[str, int] = field(default_factory=_empty_invalidations)
    checks: int = 0
    stale_results: int = 0
    stale_features: int = 0
    stale_halo: int = 0
    stale_samples: int = 0
    stale_signatures: int = 0
    shard_plan_misses: int = 0
    stale_version_lag_sum: int = 0
    stale_version_lag_max: int = 0
    stale_seconds_sum: float = 0.0
    stale_seconds_max: float = 0.0
    stale_beyond_budget: int = 0
    p99_s: float = 0.0
    baseline_p99_s: Optional[float] = None

    @property
    def updates_applied(self) -> int:
        return self.edge_updates + self.feature_updates + self.vertex_updates

    @property
    def stale_serves(self) -> int:
        """Total served results backed by any stale derived state."""
        return (self.stale_results + self.stale_features + self.stale_halo
                + self.stale_samples + self.stale_signatures)

    @property
    def total_invalidations(self) -> int:
        return sum(self.invalidations.values())

    @property
    def mean_stale_version_lag(self) -> float:
        return self.stale_version_lag_sum / self.stale_serves \
            if self.stale_serves else 0.0

    @property
    def p99_inflation(self) -> Optional[float]:
        """Mutating-run p99 over the static baseline's (None w/o baseline)."""
        if self.baseline_p99_s is None or self.baseline_p99_s <= 0:
            return None
        return self.p99_s / self.baseline_p99_s

    def summary(self) -> Dict[str, object]:
        """One table row for the CLI's streaming section."""
        row: Dict[str, object] = {
            "invalidation": self.policy,
            "updates": self.updates_applied,
            "final_version": self.final_version,
            "compactions": self.compactions,
            "invalidated": self.total_invalidations,
            "checks": self.checks,
            "stale_serves": self.stale_serves,
            "stale_beyond_budget": self.stale_beyond_budget,
        }
        inflation = self.p99_inflation
        if inflation is not None:
            row["p99_inflation_x"] = round(inflation, 3)
        return row

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "budget_versions": self.budget_versions,
            "updates_offered": self.updates_offered,
            "updates_applied": self.updates_applied,
            "edge_updates": self.edge_updates,
            "feature_updates": self.feature_updates,
            "vertex_updates": self.vertex_updates,
            "noop_updates": self.noop_updates,
            "final_version": self.final_version,
            "compactions": self.compactions,
            "invalidations": dict(self.invalidations),
            "total_invalidations": self.total_invalidations,
            "checks": self.checks,
            "stale_results": self.stale_results,
            "stale_features": self.stale_features,
            "stale_halo": self.stale_halo,
            "stale_samples": self.stale_samples,
            "stale_signatures": self.stale_signatures,
            "shard_plan_misses": self.shard_plan_misses,
            "stale_serves": self.stale_serves,
            "stale_version_lag_sum": self.stale_version_lag_sum,
            "stale_version_lag_max": self.stale_version_lag_max,
            "mean_stale_version_lag": self.mean_stale_version_lag,
            "stale_seconds_sum": self.stale_seconds_sum,
            "stale_seconds_max": self.stale_seconds_max,
            "stale_beyond_budget": self.stale_beyond_budget,
            "p99_s": self.p99_s,
            "baseline_p99_s": self.baseline_p99_s,
            "p99_inflation": self.p99_inflation,
        }


# --------------------------------------------------------------------------- #
# Heterogeneous-fleet accounting (chip shapes, shape-aware dispatch)
# --------------------------------------------------------------------------- #
@dataclass
class HeteroStats:
    """Shape-aware dispatch accounting of one heterogeneous serving run.

    Attached to a report only when the run had something shape-shaped to
    account: more than one distinct chip shape in the roster, or the
    ``shape-aware`` dispatch policy (which scores even a homogeneous
    fleet).  ``scored_batches`` counts dispatches ranked by the learned
    per-(shape, bucket) rates; ``fallback_batches`` counts dispatches that
    fell back to least-loaded because some candidate shape was still cold
    for the batch's profile bucket.

    ``misdispatch_s`` is the **time lost vs. the oracle-best shape**: for
    every served batch, the measured service time minus the best service
    time any shape in the roster was estimated to deliver (that shape's
    learned rate times the batch's measured fused size), clamped at zero
    and summed.  A perfectly-routed fleet reports ~0; a mixed fleet under
    shape-oblivious dispatch reports the chip-seconds a shape-aware policy
    could have saved.  It is an estimate -- the oracle is priced from the
    same EWMA rates the dispatcher learns -- which is what makes it cheap
    enough to compute on every batch.

    ``rates`` is the final ``"shape|bucket" -> seconds-per-fused-vertex``
    snapshot of the scorer (single-tenant) or the union over tenants'
    scorers keyed ``"tenant/shape|bucket"`` (multi-tenant).
    """

    shape_counts: Dict[str, int] = field(default_factory=dict)
    dispatch_policy: str = ""
    scored_batches: int = 0
    fallback_batches: int = 0
    misdispatch_s: float = 0.0
    rates: Dict[str, float] = field(default_factory=dict)

    @property
    def scored_fraction(self) -> float:
        total = self.scored_batches + self.fallback_batches
        return self.scored_batches / total if total else 0.0

    def summary(self) -> Dict[str, object]:
        """One table row for the CLI's heterogeneity section."""
        return {
            "dispatch": self.dispatch_policy,
            "shapes": " ".join(f"{name}x{count}" for name, count
                               in sorted(self.shape_counts.items())),
            "scored_batches": self.scored_batches,
            "fallback_batches": self.fallback_batches,
            "scored_pct": round(100.0 * self.scored_fraction, 2),
            "misdispatch_ms": round(self.misdispatch_s * 1e3, 4),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "shape_counts": dict(sorted(self.shape_counts.items())),
            "dispatch_policy": self.dispatch_policy,
            "scored_batches": self.scored_batches,
            "fallback_batches": self.fallback_batches,
            "scored_fraction": self.scored_fraction,
            "misdispatch_s": self.misdispatch_s,
            "rates_s_per_vertex": dict(sorted(self.rates.items())),
        }


# --------------------------------------------------------------------------- #
# Control-plane accounting (autoscaling, admission, degradation)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScaleEvent:
    """One fleet-shape change: a chip was added, warmed up, drained or retired.

    ``active``/``warming``/``draining`` are the fleet composition *after* the
    event, so the timeline is replayable without extra state.
    """

    time_s: float
    action: str  # "add" | "ready" | "drain" | "retire"
    chip_id: int
    active: int
    warming: int
    draining: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_s": self.time_s,
            "action": self.action,
            "chip_id": self.chip_id,
            "active": self.active,
            "warming": self.warming,
            "draining": self.draining,
        }


@dataclass(frozen=True)
class ControlSample:
    """One control-interval observation plus the policy's sizing decision."""

    time_s: float
    active: int
    warming: int
    draining: int
    desired_chips: int
    queue_depth: int
    arrival_rate_rps: float
    utilization: float
    est_queue_delay_s: float
    violations: int
    shed: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_s": self.time_s,
            "active": self.active,
            "warming": self.warming,
            "draining": self.draining,
            "desired_chips": self.desired_chips,
            "queue_depth": self.queue_depth,
            "arrival_rate_rps": self.arrival_rate_rps,
            "utilization": self.utilization,
            "est_queue_delay_s": self.est_queue_delay_s,
            "violations": self.violations,
            "shed": self.shed,
        }


@dataclass
class AdmissionStats:
    """Per-tenant admission-control outcome counters.

    ``offered`` counts requests that reached the admission gate (result-cache
    hits are answered before the gate and never appear here).  ``admitted``
    includes degraded admissions; ``degraded`` maps ladder level to count.
    """

    tenant: str = ""
    offered: int = 0
    admitted: int = 0
    shed_rate_limited: int = 0
    shed_overload: int = 0
    degraded: Dict[int, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        return self.shed_rate_limited + self.shed_overload

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    @property
    def degraded_rate(self) -> float:
        return self.degraded_total / self.admitted if self.admitted else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_overload": self.shed_overload,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "degraded": {str(k): v for k, v in sorted(self.degraded.items())},
            "degraded_total": self.degraded_total,
        }


@dataclass
class ControlStats:
    """Everything the elastic control plane did during one run.

    The cost/benefit headline is ``chip_seconds_s`` (provisioned chip time,
    including warm-up) against the SLO violations and sheds the run recorded:
    an autoscaler earns its keep when it beats a fixed ``min_chips`` fleet on
    violations while holding fewer chip-seconds than a fixed ``max_chips``
    fleet.
    """

    policy: str
    min_chips: int
    max_chips: int
    control_interval_s: float
    warmup_s: float
    initial_chips: int
    final_chips: int = 0
    chip_seconds_s: float = 0.0
    warmup_chip_seconds_s: float = 0.0
    timeline: List[ScaleEvent] = field(default_factory=list)
    samples: List[ControlSample] = field(default_factory=list)
    admission: Dict[str, AdmissionStats] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.timeline if e.action == "add")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.timeline if e.action == "retire")

    @property
    def peak_chips(self) -> int:
        peak = self.initial_chips
        for e in self.timeline:
            peak = max(peak, e.active + e.warming)
        for s in self.samples:
            peak = max(peak, s.active + s.warming)
        return peak

    @property
    def total_offered(self) -> int:
        return sum(a.offered for a in self.admission.values())

    @property
    def total_shed(self) -> int:
        return sum(a.shed for a in self.admission.values())

    @property
    def total_degraded(self) -> int:
        return sum(a.degraded_total for a in self.admission.values())

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "chips_min_max": f"{self.min_chips}..{self.max_chips}",
            "initial_chips": self.initial_chips,
            "peak_chips": self.peak_chips,
            "final_chips": self.final_chips,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "chip_seconds_ms": round(self.chip_seconds_s * 1e3, 4),
            "warmup_chip_seconds_ms": round(self.warmup_chip_seconds_s * 1e3, 4),
            "shed": self.total_shed,
            "degraded": self.total_degraded,
        }

    def scaling_table(self) -> List[Dict[str, object]]:
        """One row per control interval: observation plus sizing decision."""
        return [
            {
                "t_ms": round(s.time_s * 1e3, 3),
                "active": s.active,
                "warming": s.warming,
                "draining": s.draining,
                "desired": s.desired_chips,
                "queue_depth": s.queue_depth,
                "arrival_rps": round(s.arrival_rate_rps, 1),
                "util_pct": round(100.0 * s.utilization, 1),
                "est_delay_ms": round(s.est_queue_delay_s * 1e3, 4),
                "violations": s.violations,
                "shed": s.shed,
            }
            for s in self.samples
        ]

    def admission_table(self) -> List[Dict[str, object]]:
        """One row per tenant: offered / admitted / shed / degraded."""
        rows = []
        for name in sorted(self.admission):
            a = self.admission[name]
            rows.append({
                "tenant": a.tenant or "-",
                "offered": a.offered,
                "admitted": a.admitted,
                "shed_rate_limited": a.shed_rate_limited,
                "shed_overload": a.shed_overload,
                "shed_pct": round(100.0 * a.shed_rate, 2),
                "degraded": a.degraded_total,
                "degraded_pct": round(100.0 * a.degraded_rate, 2),
            })
        return rows

    def timeline_text(self, width: int = 24) -> str:
        """ASCII fleet-size timeline: one line per control interval.

        ``#`` columns are active chips, ``~`` warming, ``-`` draining; the
        trailing numbers are queue depth and estimated queue delay.  This is
        the "plot" the docs and CLI show -- good enough to eyeball a ramp
        without a plotting stack.
        """
        lines = []
        for s in self.samples:
            bar = "#" * s.active + "~" * s.warming + "-" * s.draining
            lines.append(f"t={s.time_s * 1e3:9.3f}ms |{bar:<{width}}| "
                         f"chips={s.active}+{s.warming} queue={s.queue_depth:4d} "
                         f"delay={s.est_queue_delay_s * 1e3:8.3f}ms")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "min_chips": self.min_chips,
            "max_chips": self.max_chips,
            "control_interval_s": self.control_interval_s,
            "warmup_s": self.warmup_s,
            "initial_chips": self.initial_chips,
            "final_chips": self.final_chips,
            "peak_chips": self.peak_chips,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "chip_seconds_s": self.chip_seconds_s,
            "warmup_chip_seconds_s": self.warmup_chip_seconds_s,
            "timeline": [e.as_dict() for e in self.timeline],
            "samples": [s.as_dict() for s in self.samples],
            "admission": {name: a.as_dict()
                          for name, a in sorted(self.admission.items())},
        }


@dataclass
class ServingReport:
    """Everything the serving evaluation reports for one traffic run."""

    model_name: str
    dataset_name: str
    num_chips: int
    batch_policy: str
    dispatch_policy: str
    rate_rps: float
    slo_s: float
    records: List[RequestRecord] = field(default_factory=list)
    chips: List[ChipStats] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)
    avg_in_flight: float = 0.0
    max_queue_depth: int = 0
    control: Optional[ControlStats] = None
    batching: Optional[BatchingStats] = None
    hetero: Optional[HeteroStats] = None
    sharding: Optional[ShardingStats] = None
    #: Streaming-update accounting; ``None`` on static runs, and -- unlike
    #: the blocks above -- *absent* from ``to_dict()`` when ``None``, so
    #: pre-streaming golden exports stay byte-identical.
    consistency: Optional[ConsistencyStats] = None
    _latencies: np.ndarray = field(default=None, init=False, repr=False,
                                   compare=False)

    # ------------------------------------------------------------------ #
    # Derived latency / throughput metrics
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request latencies; computed once per records length (summary(),
        the percentile properties and the SLO counters all re-read this)."""
        if self._latencies is None or self._latencies.size != len(self.records):
            self._latencies = np.asarray([r.latency_s for r in self.records],
                                         dtype=np.float64)
        return self._latencies

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        if not self.records:
            return 0.0
        start = min(r.arrival_time_s for r in self.records)
        end = max(r.completion_time_s for r in self.records)
        return end - start

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    @property
    def p50_latency_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p95_latency_s(self) -> float:
        return percentile(self.latencies_s, 95)

    @property
    def p99_latency_s(self) -> float:
        return percentile(self.latencies_s, 99)

    @property
    def mean_latency_s(self) -> float:
        lats = self.latencies_s
        return float(lats.mean()) if lats.size else 0.0

    @property
    def max_latency_s(self) -> float:
        lats = self.latencies_s
        return float(lats.max()) if lats.size else 0.0

    # ------------------------------------------------------------------ #
    # SLO accounting
    # ------------------------------------------------------------------ #
    @property
    def slo_violations(self) -> int:
        return int(np.count_nonzero(self.latencies_s > self.slo_s))

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / self.completed if self.completed else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests served inside the SLO (the load
        harness's pass/fail axis; 1.0 for an empty run)."""
        return 1.0 - self.slo_violation_rate

    # ------------------------------------------------------------------ #
    # Degradation accounting (elastic runs)
    # ------------------------------------------------------------------ #
    @property
    def degraded_requests(self) -> int:
        """Completed requests served at reduced sampling fidelity."""
        return sum(1 for r in self.records if r.degrade_level > 0)

    @property
    def degraded_rate(self) -> float:
        return self.degraded_requests / self.completed if self.completed else 0.0

    @property
    def chip_seconds_s(self) -> float:
        """Provisioned chip-seconds: control-plane accounting when present,
        ``num_chips * makespan`` for a fixed fleet."""
        if self.control is not None:
            return self.control.chip_seconds_s
        return self.num_chips * self.makespan_s

    @property
    def total_busy_s(self) -> float:
        """Chip-seconds actually *consumed* (sum of per-chip busy time).

        The counterpart of :attr:`chip_seconds_s` (the provisioned bill):
        dispatch quality moves this one even when the makespan is pinned by
        the arrival tail, which is why the heterogeneity acceptance runs
        compare on it.
        """
        return sum(c.busy_s for c in self.chips)

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """One-row overview (latencies in milliseconds of simulated time)."""
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "chips": self.num_chips,
            "batching": self.batch_policy,
            "dispatch": self.dispatch_policy,
            "completed": self.completed,
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_latency_s * 1e3, 4),
            "p95_ms": round(self.p95_latency_s * 1e3, 4),
            "p99_ms": round(self.p99_latency_s * 1e3, 4),
            "slo_violation_pct": round(100.0 * self.slo_violation_rate, 2),
            "cache_hit_rate_pct": round(100.0 * self.cache.hit_rate, 2),
        }

    def per_chip_table(self) -> List[Dict[str, object]]:
        """One row per chip: load share, busy time and utilisation."""
        return chip_utilization_rows(self.chips, self.makespan_s)

    def shape_table(self) -> List[Dict[str, object]]:
        """One row per chip shape: roster, load and service share
        (see :func:`shape_utilization_rows`; empty for an empty roster)."""
        return shape_utilization_rows(self.chips, self.makespan_s)

    def latency_breakdown(self) -> Dict[str, float]:
        """Mean per-request time split: batching wait, queue wait, service."""
        misses = [r for r in self.records if not r.cache_hit]
        if not misses:
            return {"batching_wait_ms": 0.0, "queue_wait_ms": 0.0, "service_ms": 0.0}
        batching = float(np.mean([r.batching_wait_s for r in misses]))
        queue = float(np.mean([r.queue_wait_s for r in misses]))
        service = float(np.mean([r.completion_time_s - r.service_start_s
                                 for r in misses]))
        return {
            "batching_wait_ms": round(batching * 1e3, 4),
            "queue_wait_ms": round(queue * 1e3, 4),
            "service_ms": round(service * 1e3, 4),
        }

    # ------------------------------------------------------------------ #
    # Machine-readable export
    # ------------------------------------------------------------------ #
    def to_dict(self, include_records: bool = True) -> Dict[str, object]:
        """JSON-compatible dict of the full report (``serve --json``)."""
        payload: Dict[str, object] = {
            "kind": "serving_report",
            "model": self.model_name,
            "dataset": self.dataset_name,
            "num_chips": self.num_chips,
            "batch_policy": self.batch_policy,
            "dispatch_policy": self.dispatch_policy,
            "rate_rps": self.rate_rps,
            "slo_s": self.slo_s,
            "completed": self.completed,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "latency_s": {
                "p50": self.p50_latency_s,
                "p95": self.p95_latency_s,
                "p99": self.p99_latency_s,
                "mean": self.mean_latency_s,
                "max": self.max_latency_s,
            },
            "latency_breakdown_ms": self.latency_breakdown(),
            "slo_violations": self.slo_violations,
            "slo_violation_rate": self.slo_violation_rate,
            "degraded_requests": self.degraded_requests,
            "degraded_rate": self.degraded_rate,
            "chip_seconds_s": self.chip_seconds_s,
            "total_busy_s": self.total_busy_s,
            "avg_in_flight": self.avg_in_flight,
            "max_queue_depth": self.max_queue_depth,
            "cache": self.cache.as_dict(),
            "chips": [c.as_dict() for c in self.chips],
            "control": self.control.to_dict() if self.control else None,
            "batching": self.batching.as_dict() if self.batching else None,
            "hetero": self.hetero.as_dict() if self.hetero else None,
            "sharding": self.sharding.as_dict() if self.sharding else None,
        }
        if self.consistency is not None:
            payload["consistency"] = self.consistency.as_dict()
        if include_records:
            payload["records"] = [
                {
                    "request_id": r.request_id,
                    "target_vertex": r.target_vertex,
                    "arrival_time_s": r.arrival_time_s,
                    "dispatch_time_s": r.dispatch_time_s,
                    "service_start_s": r.service_start_s,
                    "completion_time_s": r.completion_time_s,
                    "latency_s": r.latency_s,
                    "cache_hit": r.cache_hit,
                    "chip_id": r.chip_id,
                    "batch_id": r.batch_id,
                    "tenant": r.tenant,
                    "degrade_level": r.degrade_level,
                }
                for r in self.records
            ]
        return payload


@dataclass
class MultiTenantReport:
    """Per-tenant slices plus the fairness / isolation metrics of one run.

    ``reports`` maps each tenant to a :class:`ServingReport` restricted to its
    own requests (so all the latency / SLO machinery applies per tenant).

    Fairness accounting distinguishes two views of chip time:

    * ``busy_s``           -- total simulated chip-seconds each tenant received;
    * ``contended_busy_s`` -- chip-seconds received from batches dispatched
      while *every* tenant still had work outstanding.  WFQ only promises
      weight-proportional service during contention (an idle tenant's unused
      share is redistributed), so fairness is judged on this view.

    ``solo`` holds the same tenants' reports from isolation baseline runs
    (each tenant alone on an identical fleet, identical traffic), which feed
    the cross-tenant p99-inflation metric.
    """

    num_chips: int
    tenants: List[str]
    weights: Dict[str, float]
    reports: Dict[str, "ServingReport"]
    busy_s: Dict[str, float] = field(default_factory=dict)
    contended_busy_s: Dict[str, float] = field(default_factory=dict)
    chips: List[ChipStats] = field(default_factory=list)
    solo: Dict[str, "ServingReport"] = field(default_factory=dict)
    scheduler: str = "wfq-drr"
    avg_in_flight: float = 0.0
    max_backlog_batches: int = 0
    control: Optional[ControlStats] = None
    hetero: Optional[HeteroStats] = None
    sharding: Optional[ShardingStats] = None
    #: Streaming-update accounting aggregated over every tenant's stream
    #: (absent from ``to_dict()`` when ``None`` -- see ServingReport).
    consistency: Optional[ConsistencyStats] = None

    # ------------------------------------------------------------------ #
    # Aggregates over all tenants
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.reports.values())

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion across every tenant."""
        records = [r for rep in self.reports.values() for r in rep.records]
        if not records:
            return 0.0
        return max(r.completion_time_s for r in records) \
            - min(r.arrival_time_s for r in records)

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    # ------------------------------------------------------------------ #
    # Fairness: configured weight shares vs. measured service shares
    # ------------------------------------------------------------------ #
    def weight_share(self, tenant: str) -> float:
        total = sum(self.weights.values())
        return self.weights[tenant] / total if total > 0 else 0.0

    def service_share(self, tenant: str, contended: bool = True) -> float:
        """Fraction of (contended) chip-seconds this tenant received."""
        pool = self.contended_busy_s if contended else self.busy_s
        total = sum(pool.values())
        return pool.get(tenant, 0.0) / total if total > 0 else 0.0

    def fairness_table(self) -> List[Dict[str, object]]:
        """One row per tenant: configured vs. measured service share."""
        rows = []
        for name in self.tenants:
            want = self.weight_share(name)
            got = self.service_share(name, contended=True)
            rows.append({
                "tenant": name,
                "weight": self.weights[name],
                "weight_share_pct": round(100.0 * want, 2),
                "contended_share_pct": round(100.0 * got, 2),
                "total_share_pct": round(
                    100.0 * self.service_share(name, contended=False), 2),
                "share_error_pct": round(100.0 * abs(got - want), 2),
            })
        return rows

    # ------------------------------------------------------------------ #
    # Isolation: shared-fleet tails vs. running-alone tails
    # ------------------------------------------------------------------ #
    def p99_inflation(self, tenant: str) -> Optional[float]:
        """Shared-fleet p99 over run-alone p99 (``None`` without a baseline)."""
        solo = self.solo.get(tenant)
        if solo is None or solo.p99_latency_s <= 0:
            return None
        return self.reports[tenant].p99_latency_s / solo.p99_latency_s

    def isolation_table(self) -> List[Dict[str, object]]:
        """One row per tenant: shared vs. solo tail latency and SLO rates."""
        rows = []
        for name in self.tenants:
            shared = self.reports[name]
            solo = self.solo.get(name)
            inflation = self.p99_inflation(name)
            rows.append({
                "tenant": name,
                "shared_p99_ms": round(shared.p99_latency_s * 1e3, 4),
                "solo_p99_ms": round(solo.p99_latency_s * 1e3, 4)
                if solo else None,
                "p99_inflation_x": round(inflation, 3)
                if inflation is not None else None,
                "shared_slo_violation_pct": round(
                    100.0 * shared.slo_violation_rate, 2),
                "solo_slo_violation_pct": round(
                    100.0 * solo.slo_violation_rate, 2) if solo else None,
            })
        return rows

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def summary_table(self) -> List[Dict[str, object]]:
        """One row per tenant: traffic, latency percentiles, SLO, cache."""
        rows = []
        for name in self.tenants:
            rep = self.reports[name]
            rows.append({
                "tenant": name,
                "model": rep.model_name,
                "dataset": rep.dataset_name,
                "weight": self.weights[name],
                "rate_rps": round(rep.rate_rps, 1),
                "completed": rep.completed,
                "p50_ms": round(rep.p50_latency_s * 1e3, 4),
                "p95_ms": round(rep.p95_latency_s * 1e3, 4),
                "p99_ms": round(rep.p99_latency_s * 1e3, 4),
                "slo_ms": round(rep.slo_s * 1e3, 4),
                "slo_violation_pct": round(100.0 * rep.slo_violation_rate, 2),
                "cache_hit_rate_pct": round(100.0 * rep.cache.hit_rate, 2),
            })
        return rows

    def per_chip_table(self) -> List[Dict[str, object]]:
        """Fleet-level chip accounting over the whole multi-tenant run."""
        return chip_utilization_rows(self.chips, self.makespan_s)

    def shape_table(self) -> List[Dict[str, object]]:
        """One row per chip shape over the whole shared fleet
        (see :func:`shape_utilization_rows`)."""
        return shape_utilization_rows(self.chips, self.makespan_s)

    def batching_table(self) -> List[Dict[str, object]]:
        """One row per tenant: formation policy, overlap ratio, late joins.

        Rows come from the per-tenant slices' :class:`BatchingStats`;
        tenants whose slice carries none (e.g. deserialised reports) are
        skipped.
        """
        rows = []
        for name in self.tenants:
            stats = self.reports[name].batching
            if stats is None:
                continue
            rows.append({"tenant": name, **stats.summary()})
        return rows

    @property
    def chip_seconds_s(self) -> float:
        """Provisioned chip-seconds (control-plane view when elastic)."""
        if self.control is not None:
            return self.control.chip_seconds_s
        return self.num_chips * self.makespan_s

    @property
    def total_busy_s(self) -> float:
        """Chip-seconds actually consumed across the shared fleet
        (see :attr:`ServingReport.total_busy_s`)."""
        return sum(c.busy_s for c in self.chips)

    # ------------------------------------------------------------------ #
    # Machine-readable export
    # ------------------------------------------------------------------ #
    def to_dict(self, include_records: bool = True) -> Dict[str, object]:
        """JSON-compatible dict of the full report (``serve --json``)."""
        payload: Dict[str, object] = {
            "kind": "multi_tenant_report",
            "num_chips": self.num_chips,
            "scheduler": self.scheduler,
            "tenants": list(self.tenants),
            "weights": dict(self.weights),
            "completed": self.completed,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "chip_seconds_s": self.chip_seconds_s,
            "total_busy_s": self.total_busy_s,
            "avg_in_flight": self.avg_in_flight,
            "max_backlog_batches": self.max_backlog_batches,
            "busy_s": dict(self.busy_s),
            "contended_busy_s": dict(self.contended_busy_s),
            "fairness": self.fairness_table(),
            "isolation": self.isolation_table(),
            "chips": [c.as_dict() for c in self.chips],
            "control": self.control.to_dict() if self.control else None,
            "hetero": self.hetero.as_dict() if self.hetero else None,
            "sharding": self.sharding.as_dict() if self.sharding else None,
            "reports": {name: rep.to_dict(include_records=include_records)
                        for name, rep in self.reports.items()},
            "solo": {name: rep.to_dict(include_records=False)
                     for name, rep in self.solo.items()},
        }
        if self.consistency is not None:
            payload["consistency"] = self.consistency.as_dict()
        return payload
