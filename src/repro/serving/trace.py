"""Request-trace capture, compact codec, replay and workload characterisation.

The observability layer (:mod:`repro.serving.observe`) answers *where a
request spent its time*; this module answers *what traffic the fleet was
offered* -- and makes that stream a first-class, replayable artifact:

* :class:`TraceWriter` -- the capture hub both event loops
  (:mod:`repro.serving.fleet`, :mod:`repro.serving.tenancy`) thread their
  arrival hook through, same duck-typed opt-in pattern as
  :class:`~repro.serving.observe.Instrumentation`: the loops hold
  ``capture = None`` by default and guard the single hook with an
  ``is not None`` check, so an uncaptured run executes no capture code.
  The hook fires on every *offered* request at its arrival event -- before
  the cache lookup and before the control plane's admission/degradation
  gate -- so the trace records exactly the stream the run was asked to
  serve (including requests that were later shed), and replaying it
  through the same configuration reproduces the original
  :class:`~repro.serving.stats.ServingReport` bit-for-bit.

* A versioned compact file format: a gzip-framed binary container holding
  a JSON header (schema, tenant name table, free-form capture metadata, a
  CRC of the payload) followed by column-oriented little-endian numpy
  arrays -- about 26 bytes per request before compression, so a
  million-request trace is a few MB on disk.
  :func:`save_request_trace` / :func:`load_request_trace` are the codec;
  the loader schema-checks everything (magic, version, column dtypes,
  payload length, CRC, sortedness, value ranges) and raises
  :class:`TraceFormatError` on any malformed file, which the CLI turns
  into exit code 2 -- mirroring ``repro trace-report``.

* Replay: :meth:`RequestTrace.to_requests` reconstructs the identical
  :class:`~repro.serving.workload.Request` list (ids, targets, tenant
  tags, degradation stamps); ``repro serve --replay trace.bin`` feeds it
  through the ``arrival='trace'`` path (extended to carry per-request
  targets and shapes, see
  :meth:`repro.serving.workload.RequestGenerator.generate`).

* :func:`trace_stats` / :func:`format_trace_stats` -- the workload
  characterisation behind ``repro trace-stats``: arrival burstiness
  (squared coefficient of variation of inter-arrivals, index of
  dispersion of windowed counts), a Zipf fit of the target-popularity
  skew, per-tenant traffic shares and -- when the capture metadata names
  the dataset/sampling shape -- an overlap-potential histogram of minhash
  neighbourhood similarities (:mod:`repro.serving.sampler`) over
  popularity-weighted target pairs, which predicts how much dedup the
  overlap-aware batching policies could harvest from this traffic.
"""

from __future__ import annotations

import gzip
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .workload import Request

__all__ = [
    "TRACE_VERSION",
    "TRACE_VERSION_UPDATES",
    "RequestTrace",
    "TraceFormatError",
    "TraceWriter",
    "format_trace_stats",
    "load_request_trace",
    "save_request_trace",
    "trace_stats",
]

#: Magic bytes opening every (decompressed) request-trace container.
TRACE_MAGIC = b"REPROTRC"

#: Format version written by this build for update-free captures; version
#: :data:`TRACE_VERSION_UPDATES` is written only when the capture recorded
#: graph-update events, so every pre-streaming trace stays byte-identical.
#: The loader accepts both.
TRACE_VERSION = 1

#: Format version carrying an update-event section after the request
#: columns (streaming runs -- see :mod:`repro.serving.streaming`).
TRACE_VERSION_UPDATES = 2

#: Column schema, in on-disk order.  ``tenant`` indexes the header's tenant
#: name table; ``degrade_hops``/``degrade_fanout`` use -1 for ``None`` (no
#: per-request sampling-shape override).
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("request_id", "<i8"),
    ("target_vertex", "<i8"),
    ("arrival_time_s", "<f8"),
    ("tenant", "<u4"),
    ("degrade_level", "<i2"),
    ("degrade_hops", "<i2"),
    ("degrade_fanout", "<i4"),
)

#: Update-event column schema (version-2 traces only).  ``kind`` indexes
#: :data:`repro.serving.streaming.UPDATE_KINDS`; ``src``/``dst`` use -1 for
#: "unused by this kind"; feature rows are *not* stored -- they are a
#: deterministic function of ``feature_seed`` (see
#: :func:`repro.serving.streaming.feature_row`), which is what keeps the
#: codec fixed-width and replay bit-exact.
_UPDATE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("update_id", "<i8"),
    ("kind", "<i2"),
    ("arrival_time_s", "<f8"),
    ("src", "<i8"),
    ("dst", "<i8"),
    ("feature_seed", "<i8"),
    ("tenant", "<u4"),
)

#: Overlap-potential histogram bin edges (estimated Jaccard similarity).
_OVERLAP_BINS = np.linspace(0.0, 1.0, 11)


class TraceFormatError(ValueError):
    """A request-trace file failed schema validation (truncated, corrupt,
    wrong magic/version, or inconsistent columns)."""


# --------------------------------------------------------------------------- #
# In-memory trace
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RequestTrace:
    """A captured request stream in columnar form.

    ``columns`` maps every name in the on-disk schema to one numpy array
    (all the same length); ``tenants`` is the tenant name table the
    ``tenant`` column indexes (``("",)`` for single-tenant captures);
    ``meta`` is the free-form JSON metadata the capturing harness stamped
    (dataset, model, sampling shape, seed, resolved arrival rate, ...).
    """

    columns: Dict[str, np.ndarray]
    tenants: Tuple[str, ...] = ("",)
    meta: Dict[str, object] = field(default_factory=dict)
    #: Update-event columns (:data:`_UPDATE_COLUMNS` schema); empty dict
    #: for update-free traces, which serialise as version 1 exactly as
    #: before streaming existed.
    updates: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_requests(cls, requests: Sequence[Request],
                      meta: Optional[Mapping[str, object]] = None,
                      updates: Sequence = ()) -> "RequestTrace":
        """Columnise a request list (the writer's and the tests' entry).

        ``updates`` is an optional sequence of
        :class:`~repro.serving.streaming.UpdateEvent` in arrival order.
        """
        tenants: List[str] = sorted({r.tenant for r in requests}
                                    | {e.tenant for e in updates} or {""})
        if "" not in tenants and len(tenants) > 1:
            pass  # purely multi-tenant capture: no reserved empty slot
        index = {name: i for i, name in enumerate(tenants)}
        n = len(requests)
        columns = {name: np.empty(n, dtype=dtype)
                   for name, dtype in _COLUMNS}
        for i, r in enumerate(requests):
            columns["request_id"][i] = r.request_id
            columns["target_vertex"][i] = r.target_vertex
            columns["arrival_time_s"][i] = r.arrival_time_s
            columns["tenant"][i] = index[r.tenant]
            columns["degrade_level"][i] = r.degrade_level
            columns["degrade_hops"][i] = \
                -1 if r.degrade_hops is None else r.degrade_hops
            columns["degrade_fanout"][i] = \
                -1 if r.degrade_fanout is None else r.degrade_fanout
        update_columns: Dict[str, np.ndarray] = {}
        if updates:
            from .streaming import UPDATE_KINDS
            m = len(updates)
            update_columns = {name: np.empty(m, dtype=dtype)
                              for name, dtype in _UPDATE_COLUMNS}
            for i, e in enumerate(updates):
                update_columns["update_id"][i] = e.update_id
                update_columns["kind"][i] = UPDATE_KINDS.index(e.kind)
                update_columns["arrival_time_s"][i] = e.arrival_time_s
                update_columns["src"][i] = e.src
                update_columns["dst"][i] = e.dst
                update_columns["feature_seed"][i] = e.feature_seed
                update_columns["tenant"][i] = index[e.tenant]
        return cls(columns=columns, tenants=tuple(tenants),
                   meta=dict(meta or {}), updates=update_columns)

    def to_update_events(self) -> List:
        """Reconstruct the identical update-event list the capture recorded
        (empty for update-free traces)."""
        if not self.updates:
            return []
        from .streaming import UPDATE_KINDS, UpdateEvent
        cols = self.updates
        return [
            UpdateEvent(
                update_id=int(cols["update_id"][i]),
                kind=UPDATE_KINDS[int(cols["kind"][i])],
                arrival_time_s=float(cols["arrival_time_s"][i]),
                src=int(cols["src"][i]),
                dst=int(cols["dst"][i]),
                feature_seed=int(cols["feature_seed"][i]),
                tenant=self.tenants[cols["tenant"][i]],
            )
            for i in range(self.num_updates)
        ]

    def to_requests(self) -> List[Request]:
        """Reconstruct the identical request list the capture recorded."""
        cols = self.columns
        hops = cols["degrade_hops"]
        fanout = cols["degrade_fanout"]
        return [
            Request(
                request_id=int(cols["request_id"][i]),
                target_vertex=int(cols["target_vertex"][i]),
                arrival_time_s=float(cols["arrival_time_s"][i]),
                tenant=self.tenants[cols["tenant"][i]],
                degrade_level=int(cols["degrade_level"][i]),
                degrade_hops=None if hops[i] < 0 else int(hops[i]),
                degrade_fanout=None if fanout[i] < 0 else int(fanout[i]),
            )
            for i in range(self.num_requests)
        ]

    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        return int(self.columns["arrival_time_s"].size)

    @property
    def num_updates(self) -> int:
        if not self.updates:
            return 0
        return int(self.updates["arrival_time_s"].size)

    @property
    def duration_s(self) -> float:
        """First to last arrival (0 for traces of fewer than 2 requests)."""
        times = self.columns["arrival_time_s"]
        return float(times[-1] - times[0]) if times.size > 1 else 0.0

    @property
    def mean_rate_rps(self) -> float:
        """Mean offered rate: N arrivals span N-1 inter-arrival gaps."""
        span = self.duration_s
        return (self.num_requests - 1) / span if span > 0 else 0.0

    @property
    def tenant_names(self) -> Tuple[str, ...]:
        """Non-empty tenant names that actually appear in the stream."""
        used = np.unique(self.columns["tenant"])
        return tuple(name for i in used.tolist()
                     if (name := self.tenants[i]))

    @property
    def multi_tenant(self) -> bool:
        return bool(self.tenant_names)

    def save(self, path: str) -> None:
        save_request_trace(path, self)


class TraceWriter:
    """Capture hub the event loops thread their arrival hook through.

    Duck-typed exactly like :class:`~repro.serving.observe.Instrumentation`:
    pass one as ``capture=`` to :func:`~repro.serving.fleet.run_serving` /
    :func:`~repro.serving.tenancy.run_multi_tenant` (or to the simulator
    constructors) and every offered request is recorded in arrival order.
    ``meta`` is free-form JSON-serialisable capture metadata; the run
    harnesses stamp the workload/sampling parameters a later
    ``trace-stats`` or replay needs.
    """

    def __init__(self, meta: Optional[Mapping[str, object]] = None):
        self.meta: Dict[str, object] = dict(meta or {})
        self.requests: List[Request] = []
        self.updates: List = []

    def record(self, request: Request) -> None:
        """The arrival hook: called once per offered request, pre-admission."""
        self.requests.append(request)

    def record_update(self, event) -> None:
        """The update hook: called once per offered update event, before it
        is applied to the graph (streaming runs only)."""
        self.updates.append(event)

    @property
    def num_recorded(self) -> int:
        return len(self.requests)

    def to_trace(self) -> RequestTrace:
        return RequestTrace.from_requests(self.requests, meta=self.meta,
                                          updates=self.updates)

    def write(self, path: str) -> RequestTrace:
        """Columnise and save the capture; returns the trace written."""
        trace = self.to_trace()
        save_request_trace(path, trace)
        return trace


# --------------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------------- #
def save_request_trace(path: str, trace: RequestTrace) -> None:
    """Write ``trace`` to ``path`` in the versioned gzip-framed format.

    Layout inside the gzip frame: 8-byte magic, little-endian uint16
    version, uint32 header length, JSON header, then the columns'
    little-endian bytes concatenated in schema order.  The header carries
    the request count, tenant table, column schema, free-form metadata and
    a CRC32 of the column payload (gzip's own CRC catches truncation; the
    header CRC catches payload corruption that re-frames cleanly).
    """
    n = trace.num_requests
    payload = b""
    for name, dtype in _COLUMNS:
        column = np.ascontiguousarray(trace.columns[name], dtype=dtype)
        if column.size != n:
            raise ValueError(f"column {name!r} has {column.size} entries, "
                             f"expected {n}")
        payload += column.tobytes()
    m = trace.num_updates
    version = TRACE_VERSION_UPDATES if m else TRACE_VERSION
    if m:
        for name, dtype in _UPDATE_COLUMNS:
            column = np.ascontiguousarray(trace.updates[name], dtype=dtype)
            if column.size != m:
                raise ValueError(f"update column {name!r} has "
                                 f"{column.size} entries, expected {m}")
            payload += column.tobytes()
    header = {
        "num_requests": n,
        "tenants": list(trace.tenants),
        "columns": [[name, dtype] for name, dtype in _COLUMNS],
        "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        "meta": trace.meta,
    }
    if m:
        # keys only present on version-2 traces, so version-1 files stay
        # byte-identical to what pre-streaming builds wrote
        header["num_updates"] = m
        header["update_columns"] = [[name, dtype]
                                    for name, dtype in _UPDATE_COLUMNS]
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    frame = (TRACE_MAGIC
             + np.uint16(version).tobytes()
             + np.uint32(len(header_bytes)).tobytes()
             + header_bytes + payload)
    # mtime=0 and an empty FNAME keep the gzip frame deterministic: saving
    # the same trace under any path at any time is byte-identical
    with open(path, "wb") as handle:
        with gzip.GzipFile(filename="", fileobj=handle, mode="wb",
                           mtime=0) as gz:
            gz.write(frame)


def load_request_trace(path: str) -> RequestTrace:
    """Read and schema-validate a request trace written by
    :func:`save_request_trace`.

    Raises :class:`TraceFormatError` on any malformed file: not gzip, bad
    magic, unknown version, truncated frame, corrupt payload (CRC), column
    schema drift, or semantically invalid columns (negative / unsorted
    arrival times, out-of-range tenant indices, invalid degradation
    stamps).  A plain-JSON file gets a pointed hint that span traces
    belong to ``repro trace-report``, not here.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    if not raw.startswith(b"\x1f\x8b"):
        head = raw.lstrip()[:1]
        if head in (b"{", b"["):
            raise TraceFormatError(
                f"{path}: looks like a JSON span trace (serve --trace-out); "
                f"use `repro trace-report`, request traces come from "
                f"`serve --trace-capture`")
        raise TraceFormatError(f"{path}: not a gzip-framed request trace")
    try:
        frame = gzip.decompress(raw)
    except (OSError, EOFError, zlib.error) as exc:
        raise TraceFormatError(
            f"{path}: truncated or corrupt gzip frame ({exc})") from exc
    if len(frame) < len(TRACE_MAGIC) + 6:
        raise TraceFormatError(f"{path}: frame shorter than the fixed header")
    if frame[:len(TRACE_MAGIC)] != TRACE_MAGIC:
        raise TraceFormatError(
            f"{path}: bad magic {frame[:len(TRACE_MAGIC)]!r} "
            f"(expected {TRACE_MAGIC!r})")
    offset = len(TRACE_MAGIC)
    version = int(np.frombuffer(frame, dtype="<u2", count=1,
                                offset=offset)[0])
    if version not in (TRACE_VERSION, TRACE_VERSION_UPDATES):
        raise TraceFormatError(
            f"{path}: format version {version}, this build reads versions "
            f"{TRACE_VERSION} and {TRACE_VERSION_UPDATES}")
    offset += 2
    header_len = int(np.frombuffer(frame, dtype="<u4", count=1,
                                   offset=offset)[0])
    offset += 4
    if len(frame) < offset + header_len:
        raise TraceFormatError(f"{path}: truncated header")
    try:
        header = json.loads(frame[offset:offset + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: malformed header JSON "
                               f"({exc})") from exc
    offset += header_len
    if not isinstance(header, dict):
        raise TraceFormatError(f"{path}: header is not a JSON object")
    declared = [tuple(c) for c in header.get("columns", [])]
    if declared != list(_COLUMNS):
        raise TraceFormatError(
            f"{path}: column schema {declared} does not match this build's "
            f"{list(_COLUMNS)}")
    n = header.get("num_requests")
    if not isinstance(n, int) or n < 0:
        raise TraceFormatError(f"{path}: invalid num_requests {n!r}")
    tenants = header.get("tenants")
    if (not isinstance(tenants, list) or not tenants
            or not all(isinstance(t, str) for t in tenants)):
        raise TraceFormatError(f"{path}: invalid tenant table {tenants!r}")
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise TraceFormatError(f"{path}: invalid meta {type(meta).__name__}")
    m = 0
    if version == TRACE_VERSION_UPDATES:
        declared_updates = [tuple(c) for c in header.get("update_columns",
                                                         [])]
        if declared_updates != list(_UPDATE_COLUMNS):
            raise TraceFormatError(
                f"{path}: update-column schema {declared_updates} does not "
                f"match this build's {list(_UPDATE_COLUMNS)}")
        m = header.get("num_updates")
        if not isinstance(m, int) or m < 1:
            raise TraceFormatError(f"{path}: invalid num_updates {m!r} "
                                   f"(version-2 traces carry >= 1 update)")
    payload = frame[offset:]
    expected = sum(n * np.dtype(dtype).itemsize for _, dtype in _COLUMNS) \
        + sum(m * np.dtype(dtype).itemsize for _, dtype in _UPDATE_COLUMNS)
    if len(payload) != expected:
        raise TraceFormatError(
            f"{path}: payload is {len(payload)} bytes, schema expects "
            f"{expected} for {n} requests and {m} updates "
            f"(truncated or padded)")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    if crc != header.get("crc32"):
        raise TraceFormatError(
            f"{path}: payload CRC {crc:#010x} does not match the header's "
            f"{header.get('crc32')!r} (corrupt payload)")
    columns: Dict[str, np.ndarray] = {}
    pos = 0
    for name, dtype in _COLUMNS:
        width = n * np.dtype(dtype).itemsize
        columns[name] = np.frombuffer(payload[pos:pos + width], dtype=dtype)
        pos += width
    update_columns: Dict[str, np.ndarray] = {}
    if m:
        for name, dtype in _UPDATE_COLUMNS:
            width = m * np.dtype(dtype).itemsize
            update_columns[name] = np.frombuffer(payload[pos:pos + width],
                                                 dtype=dtype)
            pos += width
    _validate_columns(path, columns, tuple(tenants))
    if m:
        _validate_update_columns(path, update_columns, tuple(tenants))
    return RequestTrace(columns=columns, tenants=tuple(tenants), meta=meta,
                        updates=update_columns)


def _validate_update_columns(path: str, columns: Dict[str, np.ndarray],
                             tenants: Tuple[str, ...]) -> None:
    """Semantic checks on the decoded update-event section."""
    from .streaming import UPDATE_KINDS
    times = columns["arrival_time_s"]
    if not np.isfinite(times).all() or float(times.min()) < 0:
        raise TraceFormatError(
            f"{path}: update arrival times must be finite and non-negative")
    if np.any(np.diff(times) < 0):
        raise TraceFormatError(f"{path}: update arrival times are not sorted")
    kinds = columns["kind"]
    if int(kinds.min()) < 0 or int(kinds.max()) >= len(UPDATE_KINDS):
        raise TraceFormatError(
            f"{path}: update kind index outside {list(UPDATE_KINDS)}")
    if int(columns["tenant"].max()) >= len(tenants):
        raise TraceFormatError(
            f"{path}: update tenant index outside the "
            f"{len(tenants)}-entry tenant table")
    for name in ("src", "dst"):
        if int(columns[name].min()) < -1:
            raise TraceFormatError(
                f"{path}: update {name} below the -1 'unused' sentinel")


def _validate_columns(path: str, columns: Dict[str, np.ndarray],
                      tenants: Tuple[str, ...]) -> None:
    """Semantic checks on decoded columns (the schema checks already ran)."""
    times = columns["arrival_time_s"]
    if times.size:
        if not np.isfinite(times).all() or float(times.min()) < 0:
            raise TraceFormatError(
                f"{path}: arrival times must be finite and non-negative")
        if np.any(np.diff(times) < 0):
            raise TraceFormatError(f"{path}: arrival times are not sorted")
    if columns["tenant"].size and \
            int(columns["tenant"].max()) >= len(tenants):
        raise TraceFormatError(
            f"{path}: tenant index {int(columns['tenant'].max())} outside "
            f"the {len(tenants)}-entry tenant table")
    if columns["degrade_level"].size and \
            int(columns["degrade_level"].min()) < 0:
        raise TraceFormatError(f"{path}: negative degrade_level")
    for name in ("degrade_hops", "degrade_fanout"):
        if columns[name].size and int(columns[name].min()) < -1:
            raise TraceFormatError(
                f"{path}: {name} below the -1 'no override' sentinel")


# --------------------------------------------------------------------------- #
# Workload characterisation (repro trace-stats)
# --------------------------------------------------------------------------- #
def _zipf_fit(counts: np.ndarray) -> Tuple[float, float]:
    """Least-squares Zipf exponent and R^2 of log(freq) on log(rank).

    ``counts`` are per-unique-target frequencies (any order).  Returns
    ``(0.0, 1.0)`` when fewer than two distinct ranks exist (a constant
    has nothing to fit).
    """
    freqs = np.sort(counts.astype(np.float64))[::-1]
    if freqs.size < 2:
        return 0.0, 1.0
    log_rank = np.log(np.arange(1, freqs.size + 1, dtype=np.float64))
    log_freq = np.log(freqs)
    slope, intercept = np.polyfit(log_rank, log_freq, 1)
    predicted = slope * log_rank + intercept
    ss_res = float(np.sum((log_freq - predicted) ** 2))
    ss_tot = float(np.sum((log_freq - log_freq.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(-slope), r2


def _arrival_section(times: np.ndarray, windows: int) -> Dict[str, object]:
    """Burstiness statistics of one arrival-time vector."""
    n = int(times.size)
    span = float(times[-1] - times[0]) if n > 1 else 0.0
    section: Dict[str, object] = {
        "requests": n,
        "duration_s": span,
        "mean_rate_rps": (n - 1) / span if span > 0 else 0.0,
        "cv2_interarrival": 0.0,
        "index_of_dispersion": 0.0,
        "windows": 0,
        "peak_to_mean_rate": 0.0,
    }
    if n < 2 or span <= 0:
        return section
    gaps = np.diff(times)
    mean_gap = float(gaps.mean())
    if mean_gap > 0:
        # CV^2 of inter-arrival times: 1 for Poisson, >1 for bursty
        section["cv2_interarrival"] = float(gaps.var() / mean_gap ** 2)
    windows = max(1, min(int(windows), n))
    counts, _ = np.histogram(times, bins=windows,
                             range=(float(times[0]), float(times[-1])))
    mean_count = float(counts.mean())
    if mean_count > 0:
        # index of dispersion of counts: ~1 for Poisson, >1 for bursty
        section["index_of_dispersion"] = float(counts.var() / mean_count)
        section["peak_to_mean_rate"] = float(counts.max() / mean_count)
    section["windows"] = windows
    return section


def _popularity_section(targets: np.ndarray, top_k: int) -> Dict[str, object]:
    """Target-popularity skew statistics of one target-vertex vector."""
    if targets.size == 0:
        return {"unique_targets": 0, "top_k": 0, "top_k_share": 0.0,
                "zipf_exponent": 0.0, "zipf_r2": 1.0, "top_targets": []}
    unique, counts = np.unique(targets, return_counts=True)
    # most popular first; ties break on the lower vertex id (np.unique
    # returns sorted vertices, and stable argsort keeps that order)
    order = np.argsort(-counts, kind="stable")
    unique, counts = unique[order], counts[order]
    k = min(int(top_k), unique.size)
    exponent, r2 = _zipf_fit(counts)
    return {
        "unique_targets": int(unique.size),
        "top_k": k,
        "top_k_share": float(counts[:k].sum() / targets.size),
        "zipf_exponent": exponent,
        "zipf_r2": r2,
        "top_targets": [[int(v), int(c)]
                        for v, c in zip(unique[:k], counts[:k])],
    }


def _default_sampler_factory(meta: Mapping[str, object]):
    """Build the sampler ``trace-stats`` scores overlap with, from capture
    metadata (dataset + sampling shape + seed)."""
    from ..graphs.datasets import load_dataset
    from .sampler import SubgraphSampler
    graph = load_dataset(str(meta["dataset"]), seed=int(meta.get("seed", 0)))
    return SubgraphSampler(graph, num_hops=int(meta.get("num_hops", 2)),
                           fanout=int(meta.get("fanout", 8)),
                           seed=int(meta.get("seed", 0)))


def _overlap_section(targets: np.ndarray, meta: Mapping[str, object],
                     max_targets: int, max_pairs: int,
                     sampler_factory) -> Optional[Dict[str, object]]:
    """Overlap-potential histogram from minhash neighbourhood signatures.

    Signatures are computed for the ``max_targets`` most popular targets;
    ``max_pairs`` target pairs are drawn (seeded, popularity-weighted, so
    the histogram reflects the pairs a batcher would actually see) and
    their estimated Jaccard similarities are binned.  Returns ``None``
    when the metadata names no dataset (nothing to sample against).
    """
    from .sampler import estimate_jaccard
    if targets.size == 0 or not meta.get("dataset"):
        return None
    sampler = sampler_factory(meta)
    unique, counts = np.unique(targets, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    unique, counts = unique[order], counts[order]
    kept = min(int(max_targets), unique.size)
    unique, counts = unique[:kept], counts[:kept]
    signatures = [sampler.signature(int(v)) for v in unique]
    weights = counts / counts.sum()
    rng = np.random.default_rng(0)
    similarities: List[float] = []
    if kept >= 2 and max_pairs > 0:
        left = rng.choice(kept, size=int(max_pairs), p=weights)
        right = rng.choice(kept, size=int(max_pairs), p=weights)
        for i, j in zip(left, right):
            if i != j:
                similarities.append(
                    estimate_jaccard(signatures[i], signatures[j]))
    hist, _ = np.histogram(similarities, bins=_OVERLAP_BINS)
    return {
        "dataset": meta.get("dataset"),
        "num_hops": int(meta.get("num_hops", 2)),
        "fanout": int(meta.get("fanout", 8)),
        "signature_targets": kept,
        "coverage": float(counts.sum() / targets.size),
        "pairs": len(similarities),
        "mean_jaccard": float(np.mean(similarities)) if similarities
        else 0.0,
        "histogram": [[round(float(lo), 1), round(float(hi), 1), int(c)]
                      for lo, hi, c in zip(_OVERLAP_BINS[:-1],
                                           _OVERLAP_BINS[1:], hist)],
    }


def trace_stats(trace: RequestTrace, *, windows: int = 20, top_k: int = 8,
                max_targets: int = 64, max_pairs: int = 256,
                include_overlap: bool = True,
                sampler_factory=_default_sampler_factory) -> Dict[str, object]:
    """Workload-characterisation report of a captured request trace.

    Deterministic: every sampled quantity (overlap pairs) is seeded.  The
    overlap section needs the capture metadata to name a dataset and
    sampling shape (single-tenant captures stamp them at the top level,
    multi-tenant captures per tenant under ``meta['tenants']``); pass
    ``include_overlap=False`` to skip it (no dataset load).
    """
    times = trace.columns["arrival_time_s"]
    targets = trace.columns["target_vertex"]
    tenant_col = trace.columns["tenant"]
    levels = trace.columns["degrade_level"]
    stats: Dict[str, object] = {
        "num_requests": trace.num_requests,
        "tenants": list(trace.tenant_names),
        "meta": dict(trace.meta),
        "arrivals": _arrival_section(times, windows),
        "popularity": _popularity_section(targets, top_k),
        "degraded": {
            "requests": int(np.count_nonzero(levels > 0)),
            "rate": float(np.count_nonzero(levels > 0)
                          / max(trace.num_requests, 1)),
        },
    }
    per_tenant_meta: Dict[str, Mapping[str, object]] = {}
    for entry in trace.meta.get("tenants", []) or []:
        if isinstance(entry, Mapping) and entry.get("name"):
            per_tenant_meta[str(entry["name"])] = entry
    per_tenant: List[Dict[str, object]] = []
    if trace.multi_tenant:
        for name in trace.tenant_names:
            mask = tenant_col == trace.tenants.index(name)
            row: Dict[str, object] = {
                "tenant": name,
                "requests": int(np.count_nonzero(mask)),
                "share": float(np.count_nonzero(mask)
                               / max(trace.num_requests, 1)),
                "arrivals": _arrival_section(times[mask], windows),
                "popularity": _popularity_section(targets[mask], top_k),
            }
            if include_overlap and name in per_tenant_meta:
                row["overlap"] = _overlap_section(
                    targets[mask], per_tenant_meta[name],
                    max_targets, max_pairs, sampler_factory)
            per_tenant.append(row)
        stats["per_tenant"] = per_tenant
        stats["overlap"] = None
    else:
        stats["per_tenant"] = []
        stats["overlap"] = _overlap_section(
            targets, trace.meta, max_targets, max_pairs,
            sampler_factory) if include_overlap else None
    return stats


def format_trace_stats(stats: Mapping[str, object]) -> str:
    """Render :func:`trace_stats` output as the CLI's text summary."""
    arrivals = stats["arrivals"]
    popularity = stats["popularity"]
    lines = [f"request trace: {stats['num_requests']} requests"
             + (f", tenants: {', '.join(stats['tenants'])}"
                if stats["tenants"] else "")]
    lines.append("")
    lines.append(f"arrivals: {arrivals['duration_s']:.6f} s, "
                 f"mean {arrivals['mean_rate_rps']:.1f} rps")
    lines.append(f"  burstiness: CV^2(interarrival) = "
                 f"{arrivals['cv2_interarrival']:.3f}, "
                 f"index of dispersion = "
                 f"{arrivals['index_of_dispersion']:.3f} "
                 f"over {arrivals['windows']} windows "
                 f"(Poisson ~ 1), peak/mean window rate = "
                 f"{arrivals['peak_to_mean_rate']:.2f}")
    lines.append(f"popularity: {popularity['unique_targets']} unique "
                 f"targets, top-{popularity['top_k']} share = "
                 f"{100 * popularity['top_k_share']:.1f}%, "
                 f"zipf exponent = {popularity['zipf_exponent']:.3f} "
                 f"(R^2 {popularity['zipf_r2']:.3f})")
    degraded = stats["degraded"]
    if degraded["requests"]:
        lines.append(f"degraded: {degraded['requests']} requests "
                     f"({100 * degraded['rate']:.1f}%) carry "
                     f"control-plane fidelity stamps")
    for row in stats.get("per_tenant", []):
        tenant_arrivals = row["arrivals"]
        tenant_popularity = row["popularity"]
        lines.append("")
        lines.append(f"tenant {row['tenant']}: {row['requests']} requests "
                     f"({100 * row['share']:.1f}%), "
                     f"mean {tenant_arrivals['mean_rate_rps']:.1f} rps, "
                     f"IoD {tenant_arrivals['index_of_dispersion']:.2f}, "
                     f"zipf {tenant_popularity['zipf_exponent']:.2f}")
        if row.get("overlap"):
            lines.extend(_format_overlap(row["overlap"], indent="  "))
    if stats.get("overlap"):
        lines.append("")
        lines.extend(_format_overlap(stats["overlap"]))
    return "\n".join(lines)


def _format_overlap(overlap: Mapping[str, object],
                    indent: str = "") -> List[str]:
    lines = [f"{indent}overlap potential ({overlap['dataset']}, "
             f"{overlap['num_hops']} hops, fanout {overlap['fanout']}): "
             f"mean est. Jaccard {overlap['mean_jaccard']:.3f} over "
             f"{overlap['pairs']} popularity-weighted pairs of the top "
             f"{overlap['signature_targets']} targets "
             f"({100 * overlap['coverage']:.0f}% of traffic)"]
    peak = max((c for _, _, c in overlap["histogram"]), default=0)
    for lo, hi, count in overlap["histogram"]:
        bar = "#" * int(round(24 * count / peak)) if peak else ""
        lines.append(f"{indent}  [{lo:.1f}, {hi:.1f}) {count:>6} {bar}")
    return lines
