"""Phase-level building blocks shared by all GCN models.

A GCN layer is split into the two phases the paper's whole architecture is
organised around:

* :class:`AggregationPhase` -- the graph-structure-dependent reduction over
  each vertex's (possibly sampled) neighbourhood.  Several reduction operators
  are supported (``add``, ``mean``, ``max``, ``min``) plus the normalised sum
  used by vanilla GCN and the self-weighted sum used by GIN.
* :class:`CombinationPhase` -- the dense MLP applied per vertex, i.e. one or
  more matrix-vector multiplies with shared weights followed by an activation.

Keeping the phases explicit (rather than fusing them into a single ``forward``)
lets the accelerator simulator, the baselines and the characterisation harness
all consume the same workload description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph
from ..graphs.sampling import NeighborSampler, SamplingConfig

__all__ = [
    "relu",
    "softmax",
    "AggregationPhase",
    "CombinationPhase",
    "MLP",
    "LayerWorkload",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


_REDUCERS = ("add", "mean", "max", "min", "gcn_norm", "gin_sum")


@dataclass
class AggregationPhase:
    """The Aggregate function of one GCN layer.

    Parameters
    ----------
    reducer:
        One of ``add``, ``mean``, ``max``, ``min`` (element-wise reductions),
        ``gcn_norm`` (the 1/sqrt(Dv*Du) weighted sum of Eq. 4) or ``gin_sum``
        (the (1+eps)*h_v + sum of Eq. 6).
    include_self:
        Whether the vertex's own feature participates in the reduction.  GCN
        and GraphSage include it; GIN handles it through the (1+eps) term.
    epsilon:
        The learnable epsilon of GINConv (only used by ``gin_sum``).
    sampling:
        Optional neighbour sampling applied before aggregation.
    """

    reducer: str = "add"
    include_self: bool = True
    epsilon: float = 0.0
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        if self.reducer not in _REDUCERS:
            raise ValueError(f"unknown reducer {self.reducer!r}; choose from {_REDUCERS}")

    # ------------------------------------------------------------------ #
    def _neighbors(self, graph: Graph, sampler: Optional[NeighborSampler], v: int) -> np.ndarray:
        neighbors = graph.in_neighbors(v)
        if sampler is not None:
            neighbors = sampler.sample_neighbors(neighbors)
        return neighbors

    def forward(self, graph: Graph, features: np.ndarray) -> np.ndarray:
        """Aggregate ``features`` over ``graph``; returns the per-vertex a_v matrix."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != graph.num_vertices:
            raise ValueError("feature rows must match vertex count")
        sampler = NeighborSampler(self.sampling) if self.sampling and self.sampling.enabled else None
        out = np.zeros_like(features)
        degrees = graph.csc.in_degrees()
        for v in range(graph.num_vertices):
            neighbors = self._neighbors(graph, sampler, v)
            out[v] = self._reduce_vertex(features, degrees, v, neighbors)
        return out

    def _reduce_vertex(
        self,
        features: np.ndarray,
        degrees: np.ndarray,
        v: int,
        neighbors: np.ndarray,
    ) -> np.ndarray:
        self_feat = features[v]
        if self.reducer == "gcn_norm":
            # Eq. 4: sum over N(v) ∪ {v} weighted by 1/sqrt(Dv*Du), with the
            # degree convention D = in-degree + 1 (self loop).
            dv = degrees[v] + 1.0
            acc = self_feat / dv
            for u in neighbors:
                du = degrees[u] + 1.0
                acc = acc + features[u] / np.sqrt(dv * du)
            return acc
        if self.reducer == "gin_sum":
            acc = (1.0 + self.epsilon) * self_feat
            for u in neighbors:
                acc = acc + features[u]
            return acc
        gathered = [features[u] for u in neighbors]
        if self.include_self:
            gathered.append(self_feat)
        if not gathered:
            return np.zeros_like(self_feat)
        stacked = np.stack(gathered)
        if self.reducer == "add":
            return stacked.sum(axis=0)
        if self.reducer == "mean":
            return stacked.mean(axis=0)
        if self.reducer == "max":
            return stacked.max(axis=0)
        return stacked.min(axis=0)

    # ------------------------------------------------------------------ #
    def operation_count(self, graph: Graph, feature_length: int) -> int:
        """Number of scalar reduction operations performed (for workload models)."""
        sampler = NeighborSampler(self.sampling) if self.sampling and self.sampling.enabled else None
        total_edges = 0
        for v in range(graph.num_vertices):
            total_edges += len(self._neighbors(graph, sampler, v))
        per_edge = feature_length
        self_ops = graph.num_vertices * feature_length if self.include_self or \
            self.reducer in ("gcn_norm", "gin_sum") else 0
        return total_edges * per_edge + self_ops


class MLP:
    """A small multi-layer perceptron with shared weights across vertices."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str = "relu",
        seed: int = 0,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("an MLP needs at least an input and an output size")
        if activation not in ("relu", "none"):
            raise ValueError("activation must be 'relu' or 'none'")
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.activation = activation
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.standard_normal((fan_in, fan_out)) * scale)
            self.biases.append(np.zeros(fan_out))

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def input_size(self) -> int:
        return self.layer_sizes[0]

    @property
    def output_size(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, x: np.ndarray, activate_last: bool = True) -> np.ndarray:
        """Apply the MLP row-wise to ``x`` (shape ``(N, input_size)``)."""
        out = np.asarray(x, dtype=np.float64)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            is_last = i == self.num_layers - 1
            if self.activation == "relu" and (activate_last or not is_last):
                out = relu(out)
        return out

    def mac_count(self, num_vertices: int) -> int:
        """Multiply-accumulate operations to process ``num_vertices`` vertices."""
        per_vertex = sum(w.shape[0] * w.shape[1] for w in self.weights)
        return num_vertices * per_vertex

    def parameter_count(self) -> int:
        """Number of weight + bias scalars (the fully shared inter-vertex data)."""
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    def parameter_bytes(self, bytes_per_value: int = 4) -> int:
        """Footprint of the shared parameters."""
        return self.parameter_count() * bytes_per_value


@dataclass
class CombinationPhase:
    """The Combine function of one GCN layer: an MLP shared across vertices."""

    mlp: MLP
    activate_last: bool = True

    def forward(self, aggregated: np.ndarray) -> np.ndarray:
        """Transform aggregated features into the layer's output features."""
        return self.mlp.forward(aggregated, activate_last=self.activate_last)

    @property
    def input_size(self) -> int:
        return self.mlp.input_size

    @property
    def output_size(self) -> int:
        return self.mlp.output_size

    def mac_count(self, num_vertices: int) -> int:
        """MACs required to combine ``num_vertices`` vertices."""
        return self.mlp.mac_count(num_vertices)


@dataclass
class LayerWorkload:
    """A phase-level description of one GCN layer on one graph.

    This is the unit of work handed to the accelerator simulator and the
    baselines: which graph, which reduction, which MLP, in which order
    (GIN aggregates first at full feature length; GCN/GraphSage combine
    first which shortens the feature vector before aggregation -- the paper
    leans on this distinction when explaining Fig. 10c).
    """

    name: str
    graph: Graph
    aggregation: AggregationPhase
    combination: CombinationPhase
    aggregate_first: bool = True
    in_feature_length: int = 0
    out_feature_length: int = 0

    def __post_init__(self) -> None:
        if self.in_feature_length <= 0:
            self.in_feature_length = self.graph.feature_length
        if self.out_feature_length <= 0:
            self.out_feature_length = self.combination.output_size

    @property
    def aggregation_feature_length(self) -> int:
        """Feature length seen by the Aggregation phase."""
        return self.in_feature_length if self.aggregate_first else self.out_feature_length

    def aggregation_ops(self) -> int:
        """Scalar reduction operation count for the aggregation phase."""
        return self.aggregation.operation_count(self.graph, self.aggregation_feature_length)

    def combination_macs(self) -> int:
        """MAC count for the combination phase."""
        return self.combination.mac_count(self.graph.num_vertices)
