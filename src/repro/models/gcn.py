"""Vanilla GCN (Kipf & Welling), Eq. 4 of the paper.

Each layer computes ``a_v = sum_u h_u / sqrt(Dv * Du)`` over the closed
neighbourhood and then ``h_v = ReLU(W a_v + b)``.  Table 5 configures the
evaluation instance as a single layer with MLP shape ``|a_v|–128`` and an
``Add`` (degree-normalised) aggregation executed *after* Combination, i.e.
the feature vector is shortened to 128 before the graph traversal.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import GCNLayer, GCNModel
from .layers import AggregationPhase, CombinationPhase, MLP

__all__ = ["build_gcn"]


def build_gcn(
    input_length: int,
    hidden_sizes: Sequence[int] = (128,),
    aggregate_first: bool = False,
    seed: int = 0,
    name: str = "GCN",
) -> GCNModel:
    """Construct a GCN model.

    Parameters
    ----------
    input_length:
        Length of the raw vertex feature vectors (dataset dependent).
    hidden_sizes:
        Output size of each layer; Table 5 uses a single 128-wide layer.
    aggregate_first:
        Phase order.  The paper's GCN/PyG configuration combines first
        (``False``), which shortens features before aggregation.
    """
    layers = []
    in_size = input_length
    for i, out_size in enumerate(hidden_sizes):
        aggregation = AggregationPhase(reducer="gcn_norm", include_self=True)
        combination = CombinationPhase(MLP([in_size, out_size], seed=seed + i))
        layers.append(GCNLayer(
            name=f"{name.lower()}_layer{i}",
            aggregation=aggregation,
            combination=combination,
            aggregate_first=aggregate_first,
        ))
        in_size = out_size
    return GCNModel(name, layers, readout="sum")
