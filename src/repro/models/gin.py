"""GINConv (Xu et al.), Eq. 6–7 of the paper.

GIN aggregates *first*, at the full input feature length, using
``a_v = (1 + eps) h_v + sum_u h_u``, and then applies a two-layer MLP
(Table 5: ``|a_v|–128–128``).  The aggregate-first order is why GIN spends the
largest share of its time in Aggregation on CPU (Fig. 2) and why HyGCN's
speedup over PyG is largest for GIN (Fig. 10c).  For graph classification the
readout concatenates the per-layer summed representations (Eq. 7).
"""

from __future__ import annotations

from typing import Sequence

from .base import GCNLayer, GCNModel
from .layers import AggregationPhase, CombinationPhase, MLP

__all__ = ["build_gin"]


def build_gin(
    input_length: int,
    hidden_sizes: Sequence[Sequence[int]] = ((128, 128),),
    epsilon: float = 0.0,
    seed: int = 0,
    name: str = "GINConv",
) -> GCNModel:
    """Construct a GINConv model.

    Parameters
    ----------
    hidden_sizes:
        One entry per layer; each entry is the MLP's hidden/output sizes.
        Table 5 uses a single layer with a ``|a_v|–128–128`` MLP.
    epsilon:
        The learnable epsilon weighting the self feature.
    """
    layers = []
    in_size = input_length
    for i, sizes in enumerate(hidden_sizes):
        mlp_sizes = [in_size, *sizes]
        aggregation = AggregationPhase(reducer="gin_sum", epsilon=epsilon)
        combination = CombinationPhase(MLP(mlp_sizes, seed=seed + i))
        layers.append(GCNLayer(
            name=f"{name.lower()}_layer{i}",
            aggregation=aggregation,
            combination=combination,
            aggregate_first=True,
        ))
        in_size = mlp_sizes[-1]
    return GCNModel(name, layers, readout="concat_sum")
