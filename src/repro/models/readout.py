"""Readout and pooling operations (Eq. 3, Eq. 7 and the Pool discussion).

The paper treats Readout as "an extreme Aggregation": a virtual vertex
connected to every vertex of the graph, whose aggregation produces the
graph-level representation h_G, executable on the Aggregation Engine.  This
module provides both the functional readout operators and the virtual-vertex
construction so the accelerator simulator can account for readout the same
way the hardware would.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graphs.graph import CSRMatrix, Graph

__all__ = [
    "readout_sum",
    "readout_mean",
    "readout_max",
    "readout_concat",
    "add_readout_vertex",
]


def readout_sum(features: np.ndarray) -> np.ndarray:
    """Sum readout (the default Readout of Eq. 3)."""
    return np.asarray(features, dtype=np.float64).sum(axis=0)


def readout_mean(features: np.ndarray) -> np.ndarray:
    """Mean readout."""
    return np.asarray(features, dtype=np.float64).mean(axis=0)


def readout_max(features: np.ndarray) -> np.ndarray:
    """Element-wise max readout."""
    return np.asarray(features, dtype=np.float64).max(axis=0)


def readout_concat(per_layer_features: Sequence[np.ndarray],
                   reducer=readout_sum) -> np.ndarray:
    """GIN's Readout (Eq. 7): concatenate the per-layer reduced representations."""
    if not per_layer_features:
        raise ValueError("readout_concat needs at least one layer's features")
    return np.concatenate([reducer(h) for h in per_layer_features])


def add_readout_vertex(graph: Graph) -> Graph:
    """Append a virtual vertex connected to every existing vertex.

    The returned graph has ``num_vertices + 1`` vertices; the last vertex's
    in-neighbours are all original vertices, so aggregating it on the
    Aggregation Engine computes the graph-level sum/mean/max -- exactly how
    the paper maps Readout onto the hardware (Section 4.1).  The virtual
    vertex's own feature vector is zero so it does not perturb the reduction.
    """
    n = graph.num_vertices
    edges: List[tuple] = []
    for src in range(n):
        for dst in graph.neighbors(src):
            edges.append((src, int(dst)))
        edges.append((src, n))          # every vertex feeds the readout vertex
    csr = CSRMatrix.from_edges(edges, n + 1, deduplicate=False)
    features = np.vstack([graph.features, np.zeros((1, graph.feature_length))])
    return Graph(csr, features, name=f"{graph.name}[readout]")
