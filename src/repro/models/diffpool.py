"""DiffPool (Ying et al.), Eq. 8 of the paper.

DiffPool transforms a graph into a smaller, coarser graph:

* ``C = softmax(GCN_pool(A, X))`` -- the soft cluster assignment matrix,
* ``Z = GCN_embedding(A, X)`` -- the new vertex embeddings,
* ``X' = C^T Z`` and ``A' = C^T A C`` -- the pooled feature and adjacency
  matrices.

The paper maps DiffPool onto HyGCN by running the two internal GCNs on the two
engines and executing the extra matrix multiplications on the Combination
engine and the transposes on the Aggregation engine; here we provide the
functional model plus a workload description exposing those three matrix
multiplications so the hardware models can account for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graphs.graph import CSRMatrix, Graph
from .base import GCNModel
from .gcn import build_gcn
from .layers import softmax

__all__ = ["DiffPoolModel", "build_diffpool"]


@dataclass
class DiffPoolMatMul:
    """One of the dense matrix multiplications Eq. 8 introduces.

    Dimensions are recorded so hardware models can count MACs:
    the product is ``(m x k) @ (k x n)``.
    """

    name: str
    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


class DiffPoolModel:
    """Hierarchical pooling built from two internal GCNs (Eq. 8)."""

    def __init__(self, pool_gcn: GCNModel, embed_gcn: GCNModel, num_clusters: int,
                 name: str = "DiffPool"):
        self.name = name
        self.pool_gcn = pool_gcn
        self.embed_gcn = embed_gcn
        self.num_clusters = int(num_clusters)

    # ------------------------------------------------------------------ #
    def forward(self, graph: Graph) -> Tuple[Graph, np.ndarray, np.ndarray]:
        """Run one DiffPool transformation.

        Returns the pooled graph, the assignment matrix ``C`` and the new
        feature matrix ``X'``.
        """
        assignment_logits = self.pool_gcn.forward(graph)
        # GCN_pool determines the number of output vertices (clusters): keep
        # only the first ``num_clusters`` columns of its output.
        if assignment_logits.shape[1] < self.num_clusters:
            raise ValueError(
                "pool GCN output width must be >= num_clusters "
                f"({assignment_logits.shape[1]} < {self.num_clusters})"
            )
        assignment = softmax(assignment_logits[:, : self.num_clusters], axis=1)
        embeddings = self.embed_gcn.forward(graph)
        pooled_features = assignment.T @ embeddings
        dense_adj = graph.adjacency_dense()
        pooled_adj = assignment.T @ dense_adj @ assignment
        pooled_graph = _graph_from_dense(pooled_adj, pooled_features,
                                         name=f"{graph.name}[pooled]")
        return pooled_graph, assignment, pooled_features

    # ------------------------------------------------------------------ #
    def workloads(self, graph: Graph) -> list:
        """Workloads of the two internal GCNs (for the hardware models)."""
        return self.pool_gcn.workloads(graph) + self.embed_gcn.workloads(graph)

    def extra_matmuls(self, graph: Graph) -> List[DiffPoolMatMul]:
        """The three dense matrix products of Eq. 8 beyond the internal GCNs."""
        n = graph.num_vertices
        c = self.num_clusters
        z = self.embed_gcn.layers[-1].output_size
        return [
            DiffPoolMatMul("CT_Z", c, n, z),
            DiffPoolMatMul("CT_A", c, n, n),
            DiffPoolMatMul("CTA_C", c, n, c),
        ]

    def total_aggregation_ops(self, graph: Graph) -> int:
        """Aggregation operations of both internal GCNs."""
        return (self.pool_gcn.total_aggregation_ops(graph)
                + self.embed_gcn.total_aggregation_ops(graph))

    def total_combination_macs(self, graph: Graph) -> int:
        """Combination MACs of both internal GCNs plus the Eq. 8 matmuls."""
        gcn_macs = (self.pool_gcn.total_combination_macs(graph)
                    + self.embed_gcn.total_combination_macs(graph))
        extra = sum(m.macs for m in self.extra_matmuls(graph))
        return gcn_macs + extra


def _graph_from_dense(adjacency: np.ndarray, features: np.ndarray, name: str,
                      threshold: float = 1e-9) -> Graph:
    """Build a Graph from a dense (possibly weighted) adjacency matrix."""
    n = adjacency.shape[0]
    edges = [(int(i), int(j)) for i in range(n) for j in range(n)
             if i != j and abs(adjacency[i, j]) > threshold]
    if not edges and n > 1:
        edges = [(0, 1)]
    csr = CSRMatrix.from_edges(edges, n) if edges else \
        CSRMatrix.from_edges([], max(n, 1))
    return Graph(csr, features, name=name)


def build_diffpool(
    input_length: int,
    hidden_size: int = 128,
    num_clusters: int = 64,
    reducer: str = "min",
    seed: int = 0,
    name: str = "DiffPool",
) -> DiffPoolModel:
    """Construct the Table 5 DiffPool instance.

    Both internal GCNs use a single ``|a_v|–128`` layer with ``Min``
    aggregation; ``num_clusters`` bounds the pooled graph size.
    """
    pool_gcn = build_gcn(input_length, hidden_sizes=(hidden_size,), seed=seed,
                         name=f"{name}_pool")
    embed_gcn = build_gcn(input_length, hidden_sizes=(hidden_size,), seed=seed + 100,
                          name=f"{name}_embedding")
    # Table 5 specifies Min aggregation for both internal GCNs.
    for model in (pool_gcn, embed_gcn):
        for layer in model.layers:
            layer.aggregation.reducer = reducer
    num_clusters = min(num_clusters, hidden_size)
    return DiffPoolModel(pool_gcn, embed_gcn, num_clusters=num_clusters, name=name)
