"""GCN workload models: GCN, GraphSage, GINConv, DiffPool (Table 5)."""

from .layers import (
    AggregationPhase,
    CombinationPhase,
    LayerWorkload,
    MLP,
    relu,
    softmax,
)
from .base import GCNLayer, GCNModel
from .gcn import build_gcn
from .graphsage import build_graphsage
from .gin import build_gin
from .diffpool import DiffPoolModel, build_diffpool
from .model_zoo import (
    MODEL_NAMES,
    build_model,
    clear_workloads_cache,
    model_table,
    workloads_for,
)
from .readout import (
    add_readout_vertex,
    readout_concat,
    readout_max,
    readout_mean,
    readout_sum,
)

__all__ = [
    "AggregationPhase",
    "CombinationPhase",
    "LayerWorkload",
    "MLP",
    "relu",
    "softmax",
    "GCNLayer",
    "GCNModel",
    "build_gcn",
    "build_graphsage",
    "build_gin",
    "DiffPoolModel",
    "build_diffpool",
    "MODEL_NAMES",
    "build_model",
    "clear_workloads_cache",
    "model_table",
    "workloads_for",
    "add_readout_vertex",
    "readout_concat",
    "readout_max",
    "readout_mean",
    "readout_sum",
]
