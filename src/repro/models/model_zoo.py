"""Model zoo: the Table 5 evaluation configurations.

``build_model`` constructs the exact instances the paper evaluates (GCN, GSC,
GIN, DFP) for a given dataset feature length, and ``workloads_for`` flattens a
model into the per-layer :class:`~repro.models.layers.LayerWorkload` list the
hardware models consume (including DiffPool's internal GCNs).

``workloads_for`` memoises its result per (model, graph) pair: flattening a
model walks every layer and (for the sampled models) every vertex, so
repeated simulations of the same workload -- ablation sweeps that flip only
hardware switches, serving runs that re-dispatch the same fused batch -- skip
the recomputation.  ``load_dataset`` provides the matching dataset-level
memoisation in :mod:`repro.graphs.datasets`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple, Union

from ..graphs.graph import Graph
from .base import GCNModel
from .diffpool import DiffPoolModel, build_diffpool
from .gcn import build_gcn
from .gin import build_gin
from .graphsage import build_graphsage
from .layers import LayerWorkload

__all__ = ["MODEL_NAMES", "build_model", "workloads_for",
           "clear_workloads_cache", "model_table"]

#: The abbreviations used in the paper's figures.
MODEL_NAMES = ("GCN", "GSC", "GIN", "DFP")

AnyModel = Union[GCNModel, DiffPoolModel]


def build_model(
    name: str,
    input_length: int,
    hidden_size: int = 128,
    sampling_factor: int = 1,
    seed: int = 0,
) -> AnyModel:
    """Build one of the four Table 5 model instances.

    Parameters
    ----------
    name:
        ``GCN``, ``GSC`` (GraphSage), ``GIN`` (GINConv) or ``DFP`` (DiffPool).
    input_length:
        Dataset feature-vector length (|a_v| in Table 5).
    hidden_size:
        MLP output width; 128 everywhere in the paper.
    sampling_factor:
        Extra 1/f edge sampling used by the Fig. 18 scalability sweep
        (only meaningful for GSC).
    """
    key = name.upper()
    if key == "GCN":
        return build_gcn(input_length, hidden_sizes=(hidden_size,), seed=seed)
    if key == "GSC":
        return build_graphsage(
            input_length,
            hidden_sizes=(hidden_size,),
            sample_neighbors=25,
            sampling_factor=sampling_factor,
            reducer="max",
            seed=seed,
        )
    if key == "GIN":
        return build_gin(
            input_length,
            hidden_sizes=((hidden_size, hidden_size),),
            seed=seed,
        )
    if key == "DFP":
        return build_diffpool(input_length, hidden_size=hidden_size, seed=seed)
    raise ValueError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


#: Bounded LRU of flattened workloads.  Entries pin the (model, graph) pair
#: they describe, so an ``id()`` can never be recycled while its key is live.
_WORKLOADS_CACHE: "OrderedDict[Tuple, Tuple[AnyModel, Graph, List[LayerWorkload]]]" = OrderedDict()
_WORKLOADS_CACHE_SIZE = 64


def workloads_for(model: AnyModel, graph: Graph) -> List[LayerWorkload]:
    """Flatten a model into per-layer workloads on ``graph`` (memoised).

    The cache is keyed by object identity -- workload descriptions embed the
    model's phases and the graph itself, so identity is the only equality that
    is both cheap and sound -- plus the graph's mutation ``version`` when it
    has one: a streaming delta graph keeps its identity while its structure
    changes, and an identity-only key would keep serving the flattening of a
    neighbourhood that no longer exists.  A fresh list is returned on every
    call so callers may reorder or filter it without corrupting the cache.
    """
    if not getattr(graph, "memoize_workloads", True):
        # one-shot graphs (e.g. fused serving batches) opt out: a cache entry
        # would pin the graph and its feature matrix without ever hitting
        return model.workloads(graph)
    key = (id(model), id(graph), getattr(graph, "version", None))
    entry = _WORKLOADS_CACHE.get(key)
    if entry is not None and entry[0] is model and entry[1] is graph:
        _WORKLOADS_CACHE.move_to_end(key)
        return list(entry[2])
    workloads = model.workloads(graph)
    _WORKLOADS_CACHE[key] = (model, graph, workloads)
    while len(_WORKLOADS_CACHE) > _WORKLOADS_CACHE_SIZE:
        _WORKLOADS_CACHE.popitem(last=False)
    return list(workloads)


def clear_workloads_cache() -> None:
    """Drop every memoised workload flattening (frees the pinned graphs)."""
    _WORKLOADS_CACHE.clear()


def model_table() -> list:
    """Return Table 5 as a list of row dictionaries."""
    return [
        {"model": "GCN (GCN)", "sampling": None,
         "aggregation": "Add (degree-normalised)", "mlp": "|a_v|-128"},
        {"model": "GraphSage (GSC)", "sampling": 25,
         "aggregation": "Max", "mlp": "|a_v|-128"},
        {"model": "GINConv (GIN)", "sampling": None,
         "aggregation": "Add", "mlp": "|a_v|-128-128"},
        {"model": "DiffPool (DFP)", "sampling": None,
         "aggregation": "Min (pool & embedding GCNs)", "mlp": "|a_v|-128 (x2)"},
    ]
