"""Model zoo: the Table 5 evaluation configurations.

``build_model`` constructs the exact instances the paper evaluates (GCN, GSC,
GIN, DFP) for a given dataset feature length, and ``workloads_for`` flattens a
model into the per-layer :class:`~repro.models.layers.LayerWorkload` list the
hardware models consume (including DiffPool's internal GCNs).
"""

from __future__ import annotations

from typing import List, Union

from ..graphs.graph import Graph
from .base import GCNModel
from .diffpool import DiffPoolModel, build_diffpool
from .gcn import build_gcn
from .gin import build_gin
from .graphsage import build_graphsage
from .layers import LayerWorkload

__all__ = ["MODEL_NAMES", "build_model", "workloads_for", "model_table"]

#: The abbreviations used in the paper's figures.
MODEL_NAMES = ("GCN", "GSC", "GIN", "DFP")

AnyModel = Union[GCNModel, DiffPoolModel]


def build_model(
    name: str,
    input_length: int,
    hidden_size: int = 128,
    sampling_factor: int = 1,
    seed: int = 0,
) -> AnyModel:
    """Build one of the four Table 5 model instances.

    Parameters
    ----------
    name:
        ``GCN``, ``GSC`` (GraphSage), ``GIN`` (GINConv) or ``DFP`` (DiffPool).
    input_length:
        Dataset feature-vector length (|a_v| in Table 5).
    hidden_size:
        MLP output width; 128 everywhere in the paper.
    sampling_factor:
        Extra 1/f edge sampling used by the Fig. 18 scalability sweep
        (only meaningful for GSC).
    """
    key = name.upper()
    if key == "GCN":
        return build_gcn(input_length, hidden_sizes=(hidden_size,), seed=seed)
    if key == "GSC":
        return build_graphsage(
            input_length,
            hidden_sizes=(hidden_size,),
            sample_neighbors=25,
            sampling_factor=sampling_factor,
            reducer="max",
            seed=seed,
        )
    if key == "GIN":
        return build_gin(
            input_length,
            hidden_sizes=((hidden_size, hidden_size),),
            seed=seed,
        )
    if key == "DFP":
        return build_diffpool(input_length, hidden_size=hidden_size, seed=seed)
    raise ValueError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


def workloads_for(model: AnyModel, graph: Graph) -> List[LayerWorkload]:
    """Flatten a model into per-layer workloads on ``graph``."""
    if isinstance(model, DiffPoolModel):
        return model.workloads(graph)
    return model.workloads(graph)


def model_table() -> list:
    """Return Table 5 as a list of row dictionaries."""
    return [
        {"model": "GCN (GCN)", "sampling": None,
         "aggregation": "Add (degree-normalised)", "mlp": "|a_v|-128"},
        {"model": "GraphSage (GSC)", "sampling": 25,
         "aggregation": "Max", "mlp": "|a_v|-128"},
        {"model": "GINConv (GIN)", "sampling": None,
         "aggregation": "Add", "mlp": "|a_v|-128-128"},
        {"model": "DiffPool (DFP)", "sampling": None,
         "aggregation": "Min (pool & embedding GCNs)", "mlp": "|a_v|-128 (x2)"},
    ]
