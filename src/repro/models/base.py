"""Common model abstractions: a GCN layer and a multi-layer GCN model.

Each concrete model (GCN, GraphSage, GINConv, DiffPool) is expressed as a
sequence of :class:`GCNLayer` objects.  A layer bundles an
:class:`~repro.models.layers.AggregationPhase` and a
:class:`~repro.models.layers.CombinationPhase` together with the phase order,
and knows how to both *execute* itself functionally (numpy forward pass) and
*describe* itself as a :class:`~repro.models.layers.LayerWorkload` for the
hardware models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph
from .layers import AggregationPhase, CombinationPhase, LayerWorkload

__all__ = ["GCNLayer", "GCNModel"]


@dataclass
class GCNLayer:
    """One graph-convolution layer.

    ``aggregate_first`` selects the phase order: GINConv aggregates at the
    full input feature length; GCN and GraphSage effectively shorten the
    feature vector through Combination first (the execution-flow difference
    the paper highlights in Sections 3.1 and 5.2).
    """

    name: str
    aggregation: AggregationPhase
    combination: CombinationPhase
    aggregate_first: bool = True

    def forward(self, graph: Graph, features: np.ndarray) -> np.ndarray:
        """Run the layer functionally and return the new vertex features."""
        if self.aggregate_first:
            aggregated = self.aggregation.forward(graph, features)
            return self.combination.forward(aggregated)
        transformed = self.combination.forward(features)
        return self.aggregation.forward(graph, transformed)

    def workload(self, graph: Graph, in_feature_length: Optional[int] = None) -> LayerWorkload:
        """Describe this layer as a workload on ``graph`` for the hardware models."""
        return LayerWorkload(
            name=self.name,
            graph=graph,
            aggregation=self.aggregation,
            combination=self.combination,
            aggregate_first=self.aggregate_first,
            in_feature_length=in_feature_length or graph.feature_length,
            out_feature_length=self.combination.output_size,
        )

    @property
    def output_size(self) -> int:
        return self.combination.output_size


class GCNModel:
    """A stack of :class:`GCNLayer` objects plus optional readout."""

    def __init__(self, name: str, layers: Sequence[GCNLayer], readout: Optional[str] = None):
        if not layers:
            raise ValueError("a model needs at least one layer")
        if readout not in (None, "sum", "mean", "concat_sum"):
            raise ValueError("readout must be None, 'sum', 'mean' or 'concat_sum'")
        self.name = name
        self.layers = list(layers)
        self.readout = readout

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------ #
    # Functional execution
    # ------------------------------------------------------------------ #
    def forward(self, graph: Graph, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Run inference and return the final per-vertex feature matrix."""
        h = graph.features if features is None else np.asarray(features, dtype=np.float64)
        for layer in self.layers:
            h = layer.forward(graph, h)
        return h

    def forward_all_layers(self, graph: Graph) -> List[np.ndarray]:
        """Return the output of every layer (needed by GIN's concat readout)."""
        outputs = []
        h = graph.features
        for layer in self.layers:
            h = layer.forward(graph, h)
            outputs.append(h)
        return outputs

    def graph_representation(self, graph: Graph) -> np.ndarray:
        """Apply the Readout function (Eq. 3 / Eq. 7) to obtain h_G."""
        if self.readout is None:
            raise ValueError(f"model {self.name!r} has no readout configured")
        if self.readout == "concat_sum":
            per_layer = [h.sum(axis=0) for h in self.forward_all_layers(graph)]
            return np.concatenate(per_layer)
        final = self.forward(graph)
        return final.mean(axis=0) if self.readout == "mean" else final.sum(axis=0)

    # ------------------------------------------------------------------ #
    # Workload description
    # ------------------------------------------------------------------ #
    def workloads(self, graph: Graph) -> List[LayerWorkload]:
        """Per-layer workload descriptions with feature lengths chained correctly."""
        result = []
        in_len = graph.feature_length
        for layer in self.layers:
            result.append(layer.workload(graph, in_feature_length=in_len))
            in_len = layer.output_size
        return result

    def total_aggregation_ops(self, graph: Graph) -> int:
        """Total scalar aggregation operations across all layers."""
        return sum(w.aggregation_ops() for w in self.workloads(graph))

    def total_combination_macs(self, graph: Graph) -> int:
        """Total combination MACs across all layers."""
        return sum(w.combination_macs() for w in self.workloads(graph))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GCNModel(name={self.name!r}, layers={self.num_layers})"
