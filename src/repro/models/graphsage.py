"""GraphSage (Hamilton et al.), Eq. 5 of the paper.

GraphSage uniformly samples a fixed number of neighbours (25 in Table 5),
aggregates them with an element-wise reduction (the paper's Table 5 instance
uses ``Max``), and combines with ``ReLU(W a_v + b)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..graphs.sampling import SamplingConfig
from .base import GCNLayer, GCNModel
from .layers import AggregationPhase, CombinationPhase, MLP

__all__ = ["build_graphsage"]


def build_graphsage(
    input_length: int,
    hidden_sizes: Sequence[int] = (128,),
    sample_neighbors: Optional[int] = 25,
    sampling_factor: int = 1,
    reducer: str = "max",
    aggregate_first: bool = False,
    seed: int = 0,
    name: str = "GraphSage",
) -> GCNModel:
    """Construct a GraphSage model.

    Parameters
    ----------
    sample_neighbors:
        Fixed neighbour fan-in per vertex (Table 5 uses 25); ``None`` disables
        the cap.
    sampling_factor:
        Additional 1/f edge sampling used by the Fig. 18a–c scalability sweep.
    reducer:
        Element-wise reduction; Table 5 uses ``max`` (``Mean`` in Eq. 5 is also
        supported).
    """
    sampling = SamplingConfig(
        max_neighbors=sample_neighbors,
        sampling_factor=sampling_factor,
        seed=seed,
    )
    layers = []
    in_size = input_length
    for i, out_size in enumerate(hidden_sizes):
        aggregation = AggregationPhase(
            reducer=reducer,
            include_self=True,
            sampling=sampling if sampling.enabled else None,
        )
        combination = CombinationPhase(MLP([in_size, out_size], seed=seed + i))
        layers.append(GCNLayer(
            name=f"{name.lower()}_layer{i}",
            aggregation=aggregation,
            combination=combination,
            aggregate_first=aggregate_first,
        ))
        in_size = out_size
    return GCNModel(name, layers, readout="mean")
