"""HyGCN reproduction: a hybrid-architecture GCN accelerator in Python.

The package is organised as:

* :mod:`repro.graphs` -- graph data structures, synthetic Table 4 datasets,
  interval-shard partitioning and neighbour sampling;
* :mod:`repro.models` -- the GCN / GraphSage / GINConv / DiffPool workloads;
* :mod:`repro.hw` -- generic hardware substrate (buffers, HBM, energy, area);
* :mod:`repro.core` -- the HyGCN accelerator simulator itself;
* :mod:`repro.baselines` -- PyG-CPU / PyG-GPU analytical models and the CPU
  characterisation harness;
* :mod:`repro.analysis` -- comparison tables and parameter sweeps used by the
  benchmark harness;
* :mod:`repro.serving` -- online inference serving on a fleet of simulated
  accelerators (request traffic, batching, dispatch, caching, SLO reporting,
  weighted-fair multi-tenant sharing of one fleet, and an elastic control
  plane: autoscaling, admission control, graceful degradation).
"""

from .core import HyGCNConfig, HyGCNSimulator, PipelineMode, SimulationReport
from .graphs import Graph, load_dataset
from .models import build_model
from .serving import (
    ControlConfig,
    FleetConfig,
    FleetSpec,
    MultiTenantReport,
    ServingReport,
    TenantConfig,
    fleet_spec_for_mix,
    load_fleet_spec,
    load_tenant_specs,
    run_multi_tenant,
    run_serving,
)

__version__ = "1.0.0"

__all__ = [
    "HyGCNConfig",
    "HyGCNSimulator",
    "PipelineMode",
    "SimulationReport",
    "Graph",
    "load_dataset",
    "build_model",
    "ControlConfig",
    "FleetConfig",
    "FleetSpec",
    "MultiTenantReport",
    "ServingReport",
    "TenantConfig",
    "fleet_spec_for_mix",
    "load_fleet_spec",
    "load_tenant_specs",
    "run_multi_tenant",
    "run_serving",
    "__version__",
]
